package ygmnet

import (
	"bytes"
	"testing"
)

// FuzzReadFrame hardens the wire parser against arbitrary bytes: it must
// either return a frame or an error, never panic, and a frame it accepts
// must round-trip through writeFrame.
func FuzzReadFrame(f *testing.F) {
	var good bytes.Buffer
	writeFrame(&good, ftApp, appPayload(3, []byte("hello")))
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Add([]byte{0, 0, 0, 2, 2, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		ft, body, err := readFrame(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := writeFrame(&out, ft, body); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		ft2, body2, err := readFrame(bytes.NewReader(out.Bytes()), nil)
		if err != nil || ft2 != ft || !bytes.Equal(body2, body) {
			t.Fatalf("round trip mismatch: %v %v %v", ft2, body2, err)
		}
	})
}
