package ygmnet

import (
	"encoding/binary"
	"sync/atomic"
	"testing"
)

func TestClusterBasicAsync(t *testing.T) {
	var hits atomic.Int64
	var handler uint16
	c, err := StartLocal(3, func(n *Node) {
		handler = n.Register(func(_ *Node, payload []byte) {
			hits.Add(int64(binary.BigEndian.Uint64(payload)))
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(func(n *Node) {
		var p [8]byte
		binary.BigEndian.PutUint64(p[:], 1)
		for d := 0; d < n.NRanks(); d++ {
			n.Async(d, handler, p[:])
		}
		n.Barrier()
	})
	if got := hits.Load(); got != 9 {
		t.Fatalf("hits = %d, want 9", got)
	}
	for _, nd := range c.Nodes {
		if err := nd.Err(); err != nil {
			t.Fatalf("transport error: %v", err)
		}
	}
}

func TestBarrierDrainsNetworkCascades(t *testing.T) {
	// Each message spawns children on every rank until depth exhausts;
	// the barrier must wait for the full tree across real TCP links.
	var leaves atomic.Int64
	var cascade uint16
	c, err := StartLocal(3, func(n *Node) {
		cascade = n.Register(func(nd *Node, payload []byte) {
			depth := binary.BigEndian.Uint64(payload)
			if depth == 0 {
				leaves.Add(1)
				return
			}
			var p [8]byte
			binary.BigEndian.PutUint64(p[:], depth-1)
			for d := 0; d < nd.NRanks(); d++ {
				nd.Async(d, cascade, p[:])
			}
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(func(n *Node) {
		var p [8]byte
		binary.BigEndian.PutUint64(p[:], 4)
		n.Async((n.Rank()+1)%n.NRanks(), cascade, p[:])
		n.Barrier()
		// 3 roots, each expanding to 3^4 leaves.
		if got := leaves.Load(); got != 3*81 {
			t.Errorf("rank %d saw %d leaves after barrier, want %d", n.Rank(), got, 3*81)
		}
	})
}

func TestMultipleEpochs(t *testing.T) {
	var count atomic.Int64
	var inc uint16
	c, err := StartLocal(4, func(n *Node) {
		inc = n.Register(func(_ *Node, _ []byte) { count.Add(1) })
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(func(n *Node) {
		for round := int64(1); round <= 5; round++ {
			n.Async((n.Rank()+1)%n.NRanks(), inc, nil)
			n.Barrier()
			if got := count.Load(); got != 4*round {
				t.Errorf("round %d: count = %d, want %d", round, got, 4*round)
			}
			n.Barrier() // separate reads from next round's sends
		}
	})
}

func TestCounterAcrossProcesses(t *testing.T) {
	counters := make([]*Counter, 4)
	c, err := StartLocal(4, func(n *Node) {
		counters[n.Rank()] = NewCounter(n)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const perRank = 1000
	c.Run(func(n *Node) {
		cnt := counters[n.Rank()]
		for i := 0; i < perRank; i++ {
			cnt.AsyncIncrement(uint64(i % 97))
		}
		n.Barrier()
	})
	total := int64(0)
	keys := make(map[uint64]bool)
	for r, cnt := range counters {
		for k, v := range cnt.LocalShard() {
			total += v
			if keys[k] {
				t.Fatalf("key %d owned by two ranks", k)
			}
			keys[k] = true
			if own := cnt.Owner(k); own != r {
				t.Fatalf("key %d stored on rank %d, owner %d", k, r, own)
			}
		}
	}
	if total != 4*perRank {
		t.Fatalf("total = %d, want %d", total, 4*perRank)
	}
	if len(keys) != 97 {
		t.Fatalf("distinct keys = %d, want 97", len(keys))
	}
}

func TestReduceMapU32(t *testing.T) {
	maps := make([]*ReduceMapU32, 3)
	c, err := StartLocal(3, func(n *Node) {
		maps[n.Rank()] = NewReduceMapU32(n)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(func(n *Node) {
		m := maps[n.Rank()]
		for k := uint64(0); k < 50; k++ {
			m.AsyncAdd(k, 2)
		}
		n.Barrier()
	})
	for k := uint64(0); k < 50; k++ {
		got := maps[maps[0].Owner(k)].LocalShard()[k]
		if got != 6 {
			t.Fatalf("key %d = %d, want 6", k, got)
		}
	}
}

func TestSingleRankCluster(t *testing.T) {
	var n atomic.Int64
	var h uint16
	c, err := StartLocal(1, func(nd *Node) {
		h = nd.Register(func(_ *Node, _ []byte) { n.Add(1) })
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(func(nd *Node) {
		nd.Async(0, h, nil)
		nd.Barrier()
	})
	if n.Load() != 1 {
		t.Fatalf("n = %d", n.Load())
	}
}

func TestRegisterAfterSealPanics(t *testing.T) {
	c, err := StartLocal(1, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Nodes[0].Register(func(*Node, []byte) {})
}

func TestInvalidDestPanics(t *testing.T) {
	c, err := StartLocal(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Nodes[0].Async(7, 0, nil)
}

func TestStatsAccounting(t *testing.T) {
	var h uint16
	c, err := StartLocal(2, func(n *Node) {
		h = n.Register(func(*Node, []byte) {})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Run(func(n *Node) {
		if n.Rank() == 0 {
			for i := 0; i < 10; i++ {
				n.Async(1, h, nil)
			}
		}
		n.Barrier()
	})
	sent0, _ := c.Nodes[0].Stats()
	_, proc1 := c.Nodes[1].Stats()
	if sent0 != 10 || proc1 != 10 {
		t.Fatalf("sent0=%d proc1=%d, want 10/10", sent0, proc1)
	}
}
