// Package ygmnet is the network-transport counterpart of internal/ygm: the
// same asynchronous message-driven model the paper runs on YGM/MPI, but
// over real TCP links with serialized messages, so ranks can live in
// different processes (or machines). Handlers are registered by index —
// identically on every rank — and invoked with raw payload bytes; a
// Barrier completes only at global quiescence, established by a
// coordinator-led double-round counting protocol (Mattern-style): two
// consecutive counter sweeps with equal, balanced totals imply no message
// is in flight anywhere.
//
// internal/ygm remains the in-process fast path; ygmnet exists to make the
// distributed-substrate substitution real and is exercised by a full
// distributed projection (see tests) equal to the sequential Algorithm 1.
package ygmnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Handler processes one application message on the owning rank. Handlers
// may send further messages via n.Async. They run on the node's single
// executor goroutine, so rank-local state needs no locking.
type Handler func(n *Node, payload []byte)

// Config describes one rank of a cluster.
type Config struct {
	// Rank is this node's index in Addrs.
	Rank int
	// Addrs lists every rank's listen address, in rank order.
	Addrs []string
}

// Node is one rank of a ygmnet cluster.
type Node struct {
	rank int
	n    int

	ln      net.Listener
	peers   []*peerLink // by rank; peers[rank] == nil
	inMu    sync.Mutex
	inConns []net.Conn // accepted links (closed on shutdown)

	handlers []Handler
	sealMu   sync.Mutex
	sealCond *sync.Cond
	sealed   bool

	inbox *msgQueue

	sent      atomic.Int64 // app messages sent (incl. self)
	processed atomic.Int64 // app messages fully handled

	// Barrier machinery.
	epoch      uint64 // completed barrier epochs
	releaseMu  sync.Mutex
	releaseCon *sync.Cond
	released   uint64 // highest released epoch

	// Coordinator state (rank 0 only).
	coordMu      sync.Mutex
	enterCount   map[uint64]int
	reports      map[uint64]map[uint64][]reportVal // epoch → round → per-rank
	coordKick    chan struct{}
	coordRunning bool

	closed   atomic.Bool
	readErr  atomic.Value // first reader error, for diagnostics
	wg       sync.WaitGroup
	writerWg sync.WaitGroup
}

type reportVal struct {
	rank      int
	sent      uint64
	processed uint64
}

type peerLink struct {
	conn net.Conn
	out  *msgQueue
}

// queued message: either bytes destined to a peer (raw frame payload with
// type), or a local app message.
type qmsg struct {
	ft      frameType
	payload []byte
}

// msgQueue is an unbounded MPSC queue (same rationale as ygm.mailbox).
type msgQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []qmsg
	closed bool
}

func newMsgQueue() *msgQueue {
	q := &msgQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *msgQueue) push(m qmsg) {
	q.mu.Lock()
	q.items = append(q.items, m)
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *msgQueue) pop() (qmsg, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return qmsg{}, false
	}
	m := q.items[0]
	q.items = q.items[1:]
	if len(q.items) == 0 {
		q.items = nil
	}
	return m, true
}

func (q *msgQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// Start brings up a node: it listens on its own address, dials every peer,
// and begins executing incoming messages. Register all handlers (in the
// same order on every rank) before sending traffic.
func Start(cfg Config) (*Node, error) {
	nRanks := len(cfg.Addrs)
	if cfg.Rank < 0 || cfg.Rank >= nRanks {
		return nil, fmt.Errorf("ygmnet: rank %d out of range (%d addrs)", cfg.Rank, nRanks)
	}
	ln, err := net.Listen("tcp", cfg.Addrs[cfg.Rank])
	if err != nil {
		return nil, fmt.Errorf("ygmnet: listen %s: %w", cfg.Addrs[cfg.Rank], err)
	}
	n := &Node{
		rank:       cfg.Rank,
		n:          nRanks,
		ln:         ln,
		peers:      make([]*peerLink, nRanks),
		inbox:      newMsgQueue(),
		enterCount: make(map[uint64]int),
		reports:    make(map[uint64]map[uint64][]reportVal),
		coordKick:  make(chan struct{}, 16),
	}
	n.releaseCon = sync.NewCond(&n.releaseMu)
	n.sealCond = sync.NewCond(&n.sealMu)

	// Accept inbound links (n-1 of them).
	n.wg.Add(1)
	go n.acceptLoop()

	// Dial outbound links with retry (peers may not be up yet).
	for r := 0; r < nRanks; r++ {
		if r == n.rank {
			continue
		}
		conn, err := dialRetry(cfg.Addrs[r], 5*time.Second)
		if err != nil {
			n.Close()
			return nil, fmt.Errorf("ygmnet: dial rank %d (%s): %w", r, cfg.Addrs[r], err)
		}
		var hello [8]byte
		binary.BigEndian.PutUint64(hello[:], uint64(n.rank))
		if err := writeFrame(conn, ftHello, hello[:]); err != nil {
			n.Close()
			return nil, err
		}
		pl := &peerLink{conn: conn, out: newMsgQueue()}
		n.peers[r] = pl
		n.writerWg.Add(1)
		go n.writeLoop(pl)
	}

	// Executor.
	n.wg.Add(1)
	go n.execLoop()
	if n.rank == 0 {
		n.wg.Add(1)
		go n.coordinate()
	}
	return n, nil
}

func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Rank returns this node's rank.
func (n *Node) Rank() int { return n.rank }

// NRanks returns the cluster size.
func (n *Node) NRanks() int { return n.n }

// Register adds a handler and returns its id. Must be called in the same
// order on every rank, before Seal.
func (n *Node) Register(h Handler) uint16 {
	n.sealMu.Lock()
	defer n.sealMu.Unlock()
	if n.sealed {
		panic("ygmnet: Register after Seal")
	}
	id := uint16(len(n.handlers))
	n.handlers = append(n.handlers, h)
	return id
}

// Seal freezes the handler table and starts message execution. Messages
// arriving before Seal queue up; none are handled until it is called.
// Call exactly once, after all Register calls, before communicating.
func (n *Node) Seal() {
	n.sealMu.Lock()
	n.sealed = true
	n.sealMu.Unlock()
	n.sealCond.Broadcast()
}

func (n *Node) waitSealed() {
	n.sealMu.Lock()
	for !n.sealed {
		n.sealCond.Wait()
	}
	n.sealMu.Unlock()
}

// Async sends payload to handler id on rank dest. Never blocks. The
// payload is not retained by the caller after return.
func (n *Node) Async(dest int, handler uint16, payload []byte) {
	if dest < 0 || dest >= n.n {
		panic(fmt.Sprintf("ygmnet: async to invalid rank %d", dest))
	}
	n.sent.Add(1)
	body := appPayload(handler, payload)
	if dest == n.rank {
		n.inbox.push(qmsg{ft: ftApp, payload: body})
		return
	}
	n.peers[dest].out.push(qmsg{ft: ftApp, payload: body})
}

// acceptLoop accepts the n-1 inbound links and spawns readers.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for accepted := 0; accepted < n.n-1; accepted++ {
		conn, err := n.ln.Accept()
		if err != nil {
			return // closed
		}
		n.inMu.Lock()
		if n.closed.Load() {
			n.inMu.Unlock()
			conn.Close()
			return
		}
		n.inConns = append(n.inConns, conn)
		n.inMu.Unlock()
		n.wg.Add(1)
		go n.readLoop(conn)
	}
}

// readLoop decodes frames from one inbound link. App frames go to the
// inbox; control frames are handled inline (they only touch atomic
// counters and coordinator state).
func (n *Node) readLoop(conn net.Conn) {
	defer n.wg.Done()
	buf := make([]byte, 4096)
	// First frame must be hello.
	ft, body, err := readFrame(conn, buf)
	if err != nil || ft != ftHello {
		conn.Close()
		return
	}
	_ = getU64(body, 0) // peer rank (informational)
	for {
		ft, body, err := readFrame(conn, buf)
		if err != nil {
			// EOF means the peer finished and closed its side — normal
			// during shutdown, when ranks complete at different times.
			if !n.closed.Load() && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				n.readErr.CompareAndSwap(nil, err)
			}
			return
		}
		switch ft {
		case ftApp:
			// Copy out of the read buffer: the queue outlives it.
			cp := make([]byte, len(body))
			copy(cp, body)
			n.inbox.push(qmsg{ft: ftApp, payload: cp})
		case ftEnter:
			n.onEnter(getU64(body, 0))
		case ftReportReq:
			epoch, round := getU64(body, 0), getU64(body, 1)
			n.sendReport(epoch, round)
		case ftReport:
			n.onReport(body)
		case ftRelease:
			n.onRelease(getU64(body, 0))
		}
	}
}

// writeLoop drains one peer's outbound queue onto its connection. On
// shutdown the queue is closed but fully drained first, so frames queued
// before Close (e.g. the final barrier release) still reach the peer.
func (n *Node) writeLoop(pl *peerLink) {
	defer n.writerWg.Done()
	for {
		m, ok := pl.out.pop()
		if !ok {
			return
		}
		if err := writeFrame(pl.conn, m.ft, m.payload); err != nil {
			if !n.closed.Load() {
				n.readErr.CompareAndSwap(nil, err)
			}
			return
		}
	}
}

// execLoop runs app handlers in arrival order, starting once sealed.
func (n *Node) execLoop() {
	defer n.wg.Done()
	n.waitSealed()
	for {
		m, ok := n.inbox.pop()
		if !ok {
			return
		}
		id := binary.BigEndian.Uint16(m.payload)
		n.handlers[id](n, m.payload[2:])
		n.processed.Add(1)
	}
}

// ctrlTo sends a control frame to rank dest (self delivered inline).
func (n *Node) ctrlTo(dest int, ft frameType, payload []byte) {
	if dest == n.rank {
		switch ft {
		case ftEnter:
			n.onEnter(getU64(payload, 0))
		case ftReportReq:
			n.sendReport(getU64(payload, 0), getU64(payload, 1))
		case ftReport:
			n.onReport(payload)
		case ftRelease:
			n.onRelease(getU64(payload, 0))
		}
		return
	}
	n.peers[dest].out.push(qmsg{ft: ft, payload: payload})
}

// Barrier blocks until every rank has entered this epoch's barrier and the
// cluster is quiescent (all app messages, transitively, processed).
func (n *Node) Barrier() {
	epoch := atomic.AddUint64(&n.epoch, 1)
	n.ctrlTo(0, ftEnter, putU64s(epoch))
	n.releaseMu.Lock()
	for n.released < epoch {
		n.releaseCon.Wait()
	}
	n.releaseMu.Unlock()
}

func (n *Node) onRelease(epoch uint64) {
	n.releaseMu.Lock()
	if epoch > n.released {
		n.released = epoch
	}
	n.releaseMu.Unlock()
	n.releaseCon.Broadcast()
}

func (n *Node) sendReport(epoch, round uint64) {
	n.ctrlTo(0, ftReport, putU64s(epoch, round, uint64(n.rank),
		uint64(n.sent.Load()), uint64(n.processed.Load())))
}

// --- coordinator (rank 0) ---

func (n *Node) onEnter(epoch uint64) {
	n.coordMu.Lock()
	n.enterCount[epoch]++
	n.coordMu.Unlock()
	n.kick()
}

func (n *Node) onReport(body []byte) {
	epoch, round := getU64(body, 0), getU64(body, 1)
	rv := reportVal{
		rank:      int(getU64(body, 2)),
		sent:      getU64(body, 3),
		processed: getU64(body, 4),
	}
	n.coordMu.Lock()
	if n.reports[epoch] == nil {
		n.reports[epoch] = make(map[uint64][]reportVal)
	}
	n.reports[epoch][round] = append(n.reports[epoch][round], rv)
	n.coordMu.Unlock()
	n.kick()
}

func (n *Node) kick() {
	select {
	case n.coordKick <- struct{}{}:
	default:
	}
}

// coordinate drives barrier epochs to completion on rank 0.
func (n *Node) coordinate() {
	defer n.wg.Done()
	currentEpoch := uint64(1)
	round := uint64(0)
	var prevSent, prevProc uint64
	havePrev := false
	requested := false

	ticker := time.NewTicker(2 * time.Millisecond)
	defer ticker.Stop()
	for {
		if n.closed.Load() {
			return
		}
		select {
		case <-n.coordKick:
		case <-ticker.C:
		}
		n.coordMu.Lock()
		entered := n.enterCount[currentEpoch]
		if entered < n.n {
			n.coordMu.Unlock()
			continue
		}
		if !requested {
			round++
			n.coordMu.Unlock()
			req := putU64s(currentEpoch, round)
			for r := 0; r < n.n; r++ {
				n.ctrlTo(r, ftReportReq, req)
			}
			requested = true
			continue
		}
		reports := n.reports[currentEpoch][round]
		if len(reports) < n.n {
			n.coordMu.Unlock()
			continue
		}
		var sumSent, sumProc uint64
		for _, rv := range reports {
			sumSent += rv.sent
			sumProc += rv.processed
		}
		n.coordMu.Unlock()

		if sumSent == sumProc && havePrev && prevSent == sumSent && prevProc == sumProc {
			// Two consecutive balanced, unchanged sweeps → quiescent.
			rel := putU64s(currentEpoch)
			for r := 0; r < n.n; r++ {
				n.ctrlTo(r, ftRelease, rel)
			}
			n.coordMu.Lock()
			delete(n.enterCount, currentEpoch)
			delete(n.reports, currentEpoch)
			n.coordMu.Unlock()
			currentEpoch++
			round = 0
			havePrev = false
			requested = false
			continue
		}
		prevSent, prevProc, havePrev = sumSent, sumProc, true
		requested = false // issue the next sweep
	}
}

// Stats returns (sent, processed) app-message counters.
func (n *Node) Stats() (sent, processed int64) {
	return n.sent.Load(), n.processed.Load()
}

// Err returns the first transport error observed (nil if none).
func (n *Node) Err() error {
	if v := n.readErr.Load(); v != nil {
		return v.(error)
	}
	return nil
}

// Close tears the node down. Call only at quiescence (after a final
// Barrier): in-flight messages are not flushed.
func (n *Node) Close() error {
	if !n.closed.CompareAndSwap(false, true) {
		return nil
	}
	n.Seal() // unblock the executor if never sealed
	n.kick()
	// Flush outbound queues before tearing connections down: frames
	// queued before Close (final barrier releases, late reports) must
	// reach their peers.
	for _, pl := range n.peers {
		if pl != nil {
			pl.out.close()
		}
	}
	n.writerWg.Wait()
	if n.ln != nil {
		n.ln.Close()
	}
	n.inbox.close()
	for _, pl := range n.peers {
		if pl != nil {
			pl.conn.Close()
		}
	}
	n.inMu.Lock()
	for _, conn := range n.inConns {
		conn.Close()
	}
	n.inMu.Unlock()
	n.wg.Wait()
	return nil
}

// Addr returns the node's actual listen address (useful with ":0").
func (n *Node) Addr() string { return n.ln.Addr().String() }
