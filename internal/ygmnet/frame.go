package ygmnet

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Wire protocol: length-prefixed frames over per-direction TCP links.
//
//	[4B big-endian total length][1B type][payload]
//
// App frames carry [2B handler id][user payload]; control frames carry
// fixed-size fields documented per type.
type frameType byte

const (
	// ftHello announces the dialer's rank on a fresh connection.
	ftHello frameType = iota + 1
	// ftApp is an application message for a registered handler.
	ftApp
	// ftEnter tells the coordinator a rank entered barrier epoch E.
	ftEnter
	// ftReportReq asks a rank for its message counters (epoch, round).
	ftReportReq
	// ftReport answers with (epoch, round, sent, processed).
	ftReport
	// ftRelease releases barrier epoch E.
	ftRelease
)

const maxFrame = 1 << 28 // 256 MiB sanity bound

// writeFrame emits one frame. Callers serialize access per connection.
func writeFrame(w io.Writer, ft frameType, payload []byte) error {
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = byte(ft)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readFrame reads one frame, reusing buf when it fits.
func readFrame(r io.Reader, buf []byte) (frameType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("ygmnet: bad frame length %d", n)
	}
	if int(n) > cap(buf) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return frameType(buf[0]), buf[1:], nil
}

// appPayload packs an application frame body.
func appPayload(handler uint16, userPayload []byte) []byte {
	out := make([]byte, 2+len(userPayload))
	binary.BigEndian.PutUint16(out, handler)
	copy(out[2:], userPayload)
	return out
}

// u64 helpers for control frames and simple container payloads.

func putU64s(vs ...uint64) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.BigEndian.PutUint64(out[i*8:], v)
	}
	return out
}

func getU64(b []byte, i int) uint64 { return binary.BigEndian.Uint64(b[i*8:]) }
