package ygmnet

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"coordbot/internal/graph"
	"coordbot/internal/tripoll"
)

// Distributed TriPoll over the TCP transport: pivots are dealt to ranks,
// and each wedge (pivot; u, w) is shipped as a serialized 20-byte message
// to the owner of the closing edge's lower-order endpoint, which checks
// closure against the shared oriented view, applies the survey thresholds,
// and appends survivors to its local bag shard — the exact communication
// pattern of Steil et al.'s TriPoll, with TCP in place of MPI.

// TriangleCluster is a cluster prepared for distributed triangle surveys.
type TriangleCluster struct {
	Cluster *Cluster
	handler uint16
	state   []atomic.Pointer[triRun] // per rank, installed per survey
	bags    []triBag                 // per rank
}

type triBag struct {
	mu    sync.Mutex
	items []tripoll.Triangle
}

type triRun struct {
	adj  *graph.Adjacency
	o    *tripoll.Oriented
	opts tripoll.Options
	// pageCount backs the T score (shared CI graph, read-only).
	pageCount func(graph.VertexID) uint32
}

// wedge payload: 5 × uint32 big-endian (pivot, u, w, wu, ww).
func wedgePayload(buf []byte, pivot, u, w int32, wu, ww uint32) {
	binary.BigEndian.PutUint32(buf[0:], uint32(pivot))
	binary.BigEndian.PutUint32(buf[4:], uint32(u))
	binary.BigEndian.PutUint32(buf[8:], uint32(w))
	binary.BigEndian.PutUint32(buf[12:], wu)
	binary.BigEndian.PutUint32(buf[16:], ww)
}

// NewTriangleCluster starts an n-rank loopback cluster with the wedge
// handler registered on every rank.
func NewTriangleCluster(n int) (*TriangleCluster, error) {
	tc := &TriangleCluster{
		state: make([]atomic.Pointer[triRun], n),
		bags:  make([]triBag, n),
	}
	cluster, err := StartLocal(n, func(node *Node) {
		h := node.Register(func(nd *Node, payload []byte) {
			rs := tc.state[nd.Rank()].Load()
			pivot := int32(binary.BigEndian.Uint32(payload[0:]))
			u := int32(binary.BigEndian.Uint32(payload[4:]))
			w := int32(binary.BigEndian.Uint32(payload[8:]))
			wu := binary.BigEndian.Uint32(payload[12:])
			ww := binary.BigEndian.Uint32(payload[16:])
			cw, ok := rs.o.ClosingWeight(u, w)
			if !ok {
				return
			}
			tr := tripoll.Assemble(rs.adj, pivot, u, w, wu, ww, cw)
			if tr.MinWeight() < rs.opts.MinTriangleWeight {
				return
			}
			if rs.opts.MinTScore > 0 && tr.TScore(rs.pageCount) < rs.opts.MinTScore {
				return
			}
			b := &tc.bags[nd.Rank()]
			b.mu.Lock()
			b.items = append(b.items, tr)
			b.mu.Unlock()
		})
		if node.Rank() == 0 {
			tc.handler = h
		}
	})
	if err != nil {
		return nil, err
	}
	tc.Cluster = cluster
	return tc, nil
}

// Close shuts the cluster down.
func (tc *TriangleCluster) Close() { tc.Cluster.Close() }

// Survey enumerates the triangles of g passing opts, distributed across
// the cluster. Results are sorted; the cluster is reusable afterwards.
func (tc *TriangleCluster) Survey(g *graph.CIGraph, opts tripoll.Options) []tripoll.Triangle {
	pruned := g.Threshold(tripoll.EffectiveEdgeCut(opts))
	adj := pruned.BuildAdjacency()
	o := tripoll.Orient(adj)
	rs := &triRun{adj: adj, o: o, opts: opts, pageCount: g.PageCount}
	n := adj.NumVertices()
	nr := len(tc.Cluster.Nodes)
	owner := func(v int32) int { return int(mix64(uint64(uint32(v))) % uint64(nr)) }

	tc.Cluster.Run(func(node *Node) {
		tc.state[node.Rank()].Store(rs)
		node.Barrier() // every rank sees the run state before wedges fly
		var buf [20]byte
		for v := int32(node.Rank()); v < int32(n); v += int32(node.NRanks()) {
			out, wt := o.Out(v)
			for i := 0; i < len(out); i++ {
				for j := i + 1; j < len(out); j++ {
					lo := out[i]
					if o.Less(out[j], out[i]) {
						lo = out[j]
					}
					wedgePayload(buf[:], v, out[i], out[j], wt[i], wt[j])
					node.Async(owner(lo), tc.handler, buf[:])
				}
			}
		}
		node.Barrier()
	})

	var outTris []tripoll.Triangle
	for r := range tc.bags {
		b := &tc.bags[r]
		b.mu.Lock()
		outTris = append(outTris, b.items...)
		b.items = nil
		b.mu.Unlock()
	}
	tripoll.SortTriangles(outTris)
	return outTris
}
