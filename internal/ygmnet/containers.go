package ygmnet

import (
	"encoding/binary"
	"sync"
)

// Serialized counterparts of the ygm containers used by the pipeline's
// distributed steps: a counting map over uint64 keys and a reducing map
// uint64→uint32. Keys are hash-partitioned across ranks exactly like
// internal/ygm; payloads are fixed-width big-endian encodings.

// mix64 is the SplitMix64 finalizer (same partitioning as ygm.HashU64).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Counter is a distributed uint64→int64 counting map.
type Counter struct {
	node    *Node
	handler uint16
	mu      sync.Mutex
	local   map[uint64]int64
}

// NewCounter creates a Counter on node (construct before Seal, identically
// on every rank).
func NewCounter(node *Node) *Counter {
	c := &Counter{node: node, local: make(map[uint64]int64)}
	c.handler = node.Register(func(_ *Node, payload []byte) {
		key := binary.BigEndian.Uint64(payload)
		delta := int64(binary.BigEndian.Uint64(payload[8:]))
		c.mu.Lock()
		c.local[key] += delta
		c.mu.Unlock()
	})
	return c
}

// Owner returns the rank owning key k.
func (c *Counter) Owner(k uint64) int { return int(mix64(k) % uint64(c.node.n)) }

// AsyncAdd adds delta to key k at its owner.
func (c *Counter) AsyncAdd(k uint64, delta int64) {
	var payload [16]byte
	binary.BigEndian.PutUint64(payload[:8], k)
	binary.BigEndian.PutUint64(payload[8:], uint64(delta))
	c.node.Async(c.Owner(k), c.handler, payload[:])
}

// AsyncIncrement adds 1 to key k.
func (c *Counter) AsyncIncrement(k uint64) { c.AsyncAdd(k, 1) }

// LocalShard copies this rank's shard. Call at quiescence.
func (c *Counter) LocalShard() map[uint64]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[uint64]int64, len(c.local))
	for k, v := range c.local {
		out[k] = v
	}
	return out
}

// StrCounter is a distributed string→int64 counting map. Keys are owned by
// hash; payloads are [4B big-endian key length][key bytes][8B delta]. It
// exists for multi-process deployments where ranks share no interner:
// author and page identities travel as names, so no global ID assignment
// round is needed.
type StrCounter struct {
	node    *Node
	handler uint16
	mu      sync.Mutex
	local   map[string]int64
}

// NewStrCounter creates a StrCounter on node (before Seal, all ranks).
func NewStrCounter(node *Node) *StrCounter {
	c := &StrCounter{node: node, local: make(map[string]int64)}
	c.handler = node.Register(func(_ *Node, payload []byte) {
		klen := binary.BigEndian.Uint32(payload)
		key := string(payload[4 : 4+klen])
		delta := int64(binary.BigEndian.Uint64(payload[4+klen:]))
		c.mu.Lock()
		c.local[key] += delta
		c.mu.Unlock()
	})
	return c
}

// hashString is FNV-1a 64 followed by the SplitMix64 finalizer, matching
// ygm.HashString so in-process and network paths partition identically.
func hashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

// Owner returns the rank owning key k.
func (c *StrCounter) Owner(k string) int { return int(hashString(k) % uint64(c.node.n)) }

// AsyncAdd adds delta to key k at its owner.
func (c *StrCounter) AsyncAdd(k string, delta int64) {
	payload := make([]byte, 4+len(k)+8)
	binary.BigEndian.PutUint32(payload, uint32(len(k)))
	copy(payload[4:], k)
	binary.BigEndian.PutUint64(payload[4+len(k):], uint64(delta))
	c.node.Async(c.Owner(k), c.handler, payload)
}

// LocalShard copies this rank's shard. Call at quiescence.
func (c *StrCounter) LocalShard() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.local))
	for k, v := range c.local {
		out[k] = v
	}
	return out
}

// Reset clears the shard for reuse.
func (c *StrCounter) Reset() {
	c.mu.Lock()
	c.local = make(map[string]int64)
	c.mu.Unlock()
}

// ReduceMapU32 is a distributed uint64→uint32 map with additive reduce —
// the shape of the projection's edge-weight accumulator.
type ReduceMapU32 struct {
	node    *Node
	handler uint16
	mu      sync.Mutex
	local   map[uint64]uint32
}

// NewReduceMapU32 creates the map on node (before Seal, all ranks).
func NewReduceMapU32(node *Node) *ReduceMapU32 {
	m := &ReduceMapU32{node: node, local: make(map[uint64]uint32)}
	m.handler = node.Register(func(_ *Node, payload []byte) {
		key := binary.BigEndian.Uint64(payload)
		w := binary.BigEndian.Uint32(payload[8:])
		m.mu.Lock()
		m.local[key] += w
		m.mu.Unlock()
	})
	return m
}

// Owner returns the rank owning key k.
func (m *ReduceMapU32) Owner(k uint64) int { return int(mix64(k) % uint64(m.node.n)) }

// AsyncAdd adds w to key k at its owner.
func (m *ReduceMapU32) AsyncAdd(k uint64, w uint32) {
	var payload [12]byte
	binary.BigEndian.PutUint64(payload[:8], k)
	binary.BigEndian.PutUint32(payload[8:], w)
	m.node.Async(m.Owner(k), m.handler, payload[:])
}

// LocalShard copies this rank's shard. Call at quiescence.
func (m *ReduceMapU32) LocalShard() map[uint64]uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[uint64]uint32, len(m.local))
	for k, v := range m.local {
		out[k] = v
	}
	return out
}
