package ygmnet

import (
	"encoding/binary"
	"sort"
	"sync"

	"coordbot/internal/graph"
	"coordbot/internal/hypergraph"
)

// Distributed Step 3 over the TCP transport with genuinely partitioned
// data: each author's distinct-page list lives only on its owner rank
// (populated by (author, page) messages during a build phase), and a
// triplet evaluation gathers the three lists via fetch/reply messages to
// the requester, which intersects them — "dividing up authors to be
// checked among several compute nodes" (§2.4), with the storage actually
// divided.

// HypergraphCluster is a cluster holding a partitioned author→pages index.
type HypergraphCluster struct {
	Cluster *Cluster
	insertH uint16
	fetchH  uint16
	replyH  uint16

	shards []hyperShard  // per rank: owned author lists
	evals  []evalState   // per rank: in-flight evaluations
	outs   []hyperOutBag // per rank: finished scores
}

type hyperShard struct {
	mu    sync.Mutex
	pages map[graph.VertexID][]graph.VertexID // author → pages (sorted+deduped at barrier)
}

type evalState struct {
	mu      sync.Mutex
	pending map[uint32]*pendingEval
	next    uint32
}

type pendingEval struct {
	triplet hypergraph.Triplet
	lists   [3][]graph.VertexID
	got     int
}

type hyperOutBag struct {
	mu    sync.Mutex
	items []hypergraph.Score
}

// wire encodings:
//
//	insert: [4B author][4B page]
//	fetch:  [4B requester rank][4B eval id][1B slot][4B author]
//	reply:  [4B eval id][1B slot][4B count][4B page ...]

// NewHypergraphCluster starts an n-rank loopback cluster with the three
// handlers registered.
func NewHypergraphCluster(n int) (*HypergraphCluster, error) {
	hc := &HypergraphCluster{
		shards: make([]hyperShard, n),
		evals:  make([]evalState, n),
		outs:   make([]hyperOutBag, n),
	}
	for i := range hc.shards {
		hc.shards[i].pages = make(map[graph.VertexID][]graph.VertexID)
		hc.evals[i].pending = make(map[uint32]*pendingEval)
	}
	cluster, err := StartLocal(n, func(node *Node) {
		r := node.Rank()
		insert := node.Register(func(nd *Node, payload []byte) {
			author := graph.VertexID(binary.BigEndian.Uint32(payload))
			page := graph.VertexID(binary.BigEndian.Uint32(payload[4:]))
			s := &hc.shards[nd.Rank()]
			s.mu.Lock()
			s.pages[author] = append(s.pages[author], page)
			s.mu.Unlock()
		})
		fetch := node.Register(func(nd *Node, payload []byte) {
			requester := int(binary.BigEndian.Uint32(payload))
			evalID := binary.BigEndian.Uint32(payload[4:])
			slot := payload[8]
			author := graph.VertexID(binary.BigEndian.Uint32(payload[9:]))
			s := &hc.shards[nd.Rank()]
			s.mu.Lock()
			pages := s.pages[author]
			reply := make([]byte, 4+1+4+4*len(pages))
			binary.BigEndian.PutUint32(reply, evalID)
			reply[4] = slot
			binary.BigEndian.PutUint32(reply[5:], uint32(len(pages)))
			for i, p := range pages {
				binary.BigEndian.PutUint32(reply[9+4*i:], uint32(p))
			}
			s.mu.Unlock()
			nd.Async(requester, hc.replyH, reply)
		})
		reply := node.Register(func(nd *Node, payload []byte) {
			evalID := binary.BigEndian.Uint32(payload)
			slot := payload[4]
			count := binary.BigEndian.Uint32(payload[5:])
			pages := make([]graph.VertexID, count)
			for i := range pages {
				pages[i] = graph.VertexID(binary.BigEndian.Uint32(payload[9+4*i:]))
			}
			es := &hc.evals[nd.Rank()]
			es.mu.Lock()
			pe := es.pending[evalID]
			pe.lists[slot] = pages
			pe.got++
			done := pe.got == 3
			if done {
				delete(es.pending, evalID)
			}
			es.mu.Unlock()
			if !done {
				return
			}
			score := scoreFromLists(pe.triplet, pe.lists)
			ob := &hc.outs[nd.Rank()]
			ob.mu.Lock()
			ob.items = append(ob.items, score)
			ob.mu.Unlock()
		})
		if r == 0 {
			hc.insertH, hc.fetchH, hc.replyH = insert, fetch, reply
		}
	})
	if err != nil {
		return nil, err
	}
	hc.Cluster = cluster
	return hc, nil
}

// scoreFromLists computes the Step-3 record from the three sorted page
// lists (w = 3-way intersection size, C = 3w / Σ|pages|).
func scoreFromLists(t hypergraph.Triplet, lists [3][]graph.VertexID) hypergraph.Score {
	w := intersect3(lists[0], lists[1], lists[2])
	px, py, pz := len(lists[0]), len(lists[1]), len(lists[2])
	den := float64(px + py + pz)
	c := 0.0
	if den > 0 {
		c = 3 * float64(w) / den
	}
	return hypergraph.Score{Triplet: t, W: w, C: c, PX: px, PY: py, PZ: pz}
}

func intersect3(a, b, c []graph.VertexID) int {
	i, j, k, n := 0, 0, 0, 0
	for i < len(a) && j < len(b) && k < len(c) {
		x, y, z := a[i], b[j], c[k]
		if x == y && y == z {
			n++
			i++
			j++
			k++
			continue
		}
		m := x
		if y < m {
			m = y
		}
		if z < m {
			m = z
		}
		if x == m {
			i++
		}
		if y == m {
			j++
		}
		if z == m {
			k++
		}
	}
	return n
}

// Close shuts the cluster down.
func (hc *HypergraphCluster) Close() { hc.Cluster.Close() }

func (hc *HypergraphCluster) owner(a graph.VertexID) int {
	return int(mix64(uint64(a)) % uint64(len(hc.Cluster.Nodes)))
}

// Build distributes the BTM's author→pages index across the cluster:
// ranks scan disjoint page ranges and send (author, page) messages to each
// author's owner; at the barrier every owned list is sorted and deduped.
// Call once per dataset (Reset clears it).
func (hc *HypergraphCluster) Build(b *graph.BTM) {
	hc.Cluster.Run(func(node *Node) {
		var buf [8]byte
		seen := make(map[graph.VertexID]struct{})
		for p := node.Rank(); p < b.NumPages(); p += node.NRanks() {
			clear(seen)
			for _, at := range b.PageNeighborhood(graph.VertexID(p)) {
				if _, dup := seen[at.Author]; dup {
					continue
				}
				seen[at.Author] = struct{}{}
				binary.BigEndian.PutUint32(buf[:4], uint32(at.Author))
				binary.BigEndian.PutUint32(buf[4:], uint32(p))
				node.Async(hc.owner(at.Author), hc.insertH, buf[:])
			}
		}
		node.Barrier()
		// Sort + dedupe owned lists.
		s := &hc.shards[node.Rank()]
		s.mu.Lock()
		for a, ps := range s.pages {
			sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
			w := 0
			for i, p := range ps {
				if i == 0 || p != ps[w-1] {
					ps[w] = p
					w++
				}
			}
			s.pages[a] = ps[:w]
		}
		s.mu.Unlock()
		node.Barrier()
	})
}

// Reset clears the partitioned index and result bags.
func (hc *HypergraphCluster) Reset() {
	for i := range hc.shards {
		hc.shards[i].mu.Lock()
		hc.shards[i].pages = make(map[graph.VertexID][]graph.VertexID)
		hc.shards[i].mu.Unlock()
		hc.outs[i].mu.Lock()
		hc.outs[i].items = nil
		hc.outs[i].mu.Unlock()
	}
}

// EvaluateAll computes Step-3 records for the triplets against the built
// index, dealing triplets round-robin; each evaluation gathers its three
// author lists by messaging their owners. Results are sorted by triplet.
func (hc *HypergraphCluster) EvaluateAll(triplets []hypergraph.Triplet) []hypergraph.Score {
	hc.Cluster.Run(func(node *Node) {
		r := node.Rank()
		var buf [13]byte
		for i := r; i < len(triplets); i += node.NRanks() {
			t := triplets[i]
			es := &hc.evals[r]
			es.mu.Lock()
			id := es.next
			es.next++
			es.pending[id] = &pendingEval{triplet: t}
			es.mu.Unlock()
			for slot, a := range [3]graph.VertexID{t.X, t.Y, t.Z} {
				binary.BigEndian.PutUint32(buf[:4], uint32(r))
				binary.BigEndian.PutUint32(buf[4:], id)
				buf[8] = byte(slot)
				binary.BigEndian.PutUint32(buf[9:], uint32(a))
				node.Async(hc.owner(a), hc.fetchH, buf[:])
			}
		}
		node.Barrier()
	})
	var out []hypergraph.Score
	for i := range hc.outs {
		ob := &hc.outs[i]
		ob.mu.Lock()
		out = append(out, ob.items...)
		ob.items = nil
		ob.mu.Unlock()
	}
	hypergraph.SortScores(out)
	return out
}
