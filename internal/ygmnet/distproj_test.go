package ygmnet

import (
	"math/rand"
	"sort"
	"testing"

	"coordbot/internal/graph"
	"coordbot/internal/projection"
	"coordbot/internal/redditgen"
)

func randomBTM(seed int64, n, authors, pages int) *graph.BTM {
	rng := rand.New(rand.NewSource(seed))
	cs := make([]graph.Comment, n)
	for i := range cs {
		cs[i] = graph.Comment{
			Author: graph.VertexID(rng.Intn(authors)),
			Page:   graph.VertexID(rng.Intn(pages)),
			TS:     int64(rng.Intn(7200)),
		}
	}
	return graph.BuildBTM(cs, authors, pages)
}

func TestDistributedProjectionMatchesSequential(t *testing.T) {
	b := randomBTM(44, 4000, 120, 60)
	for _, ranks := range []int{1, 3, 5} {
		pc, err := NewProjectionCluster(ranks)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []projection.Window{{Min: 0, Max: 60}, {Min: 30, Max: 600}} {
			want, err := projection.ProjectSequential(b, w, projection.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := pc.Project(b, w, projection.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !want.Equal(got) {
				t.Fatalf("ranks %d window %v: distributed != sequential (%d vs %d edges)",
					ranks, w, got.NumEdges(), want.NumEdges())
			}
		}
		pc.Close()
	}
}

func TestDistributedProjectionWithExclusions(t *testing.T) {
	d := redditgen.Generate(redditgen.Tiny(21))
	b := d.BTM()
	opts := projection.Options{Exclude: d.Helpers}
	w := projection.Window{Min: 0, Max: 60}
	want, err := projection.ProjectSequential(b, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewProjectionCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	got, err := pc.Project(b, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Fatalf("distributed != sequential with exclusions")
	}
	// The cluster is reusable: a second projection on the same cluster.
	w2 := projection.Window{Min: 0, Max: 300}
	want2, _ := projection.ProjectSequential(b, w2, opts)
	got2, err := pc.Project(b, w2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !want2.Equal(got2) {
		t.Fatal("second projection on reused cluster differs")
	}
}

func TestDistributedProjectionRejectsBadWindow(t *testing.T) {
	pc, err := NewProjectionCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if _, err := pc.Project(randomBTM(1, 10, 4, 3), projection.Window{Min: 9, Max: 9}, projection.Options{}); err == nil {
		t.Fatal("bad window accepted")
	}
}

func TestDistributedShardOwnership(t *testing.T) {
	// Every key lands on exactly its owner rank.
	b := randomBTM(9, 2000, 50, 30)
	pc, err := NewProjectionCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	// Run the comm phase only (reuse Project, then inspect shards of a
	// *fresh* projection by re-running and checking before drain is not
	// possible through the public API — instead recompute ownership from
	// the result: keys must be partitioned, which Project's assembly
	// already guarantees uniqueness for; assert determinism instead).
	g1, err := pc.Project(b, projection.Window{Min: 0, Max: 120}, projection.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := pc.Project(b, projection.Window{Min: 0, Max: 120}, projection.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Equal(g2) {
		t.Fatal("repeated distributed projection not deterministic")
	}
	// Sanity: weights sorted descending must match across runs.
	ws1 := weights(g1)
	ws2 := weights(g2)
	for i := range ws1 {
		if ws1[i] != ws2[i] {
			t.Fatal("weight multiset differs")
		}
	}
}

func weights(g *graph.CIGraph) []uint32 {
	var out []uint32
	for _, e := range g.Edges() {
		out = append(out, e.W)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}
