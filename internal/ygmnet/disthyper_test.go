package ygmnet

import (
	"math/rand"
	"testing"

	"coordbot/internal/graph"
	"coordbot/internal/hypergraph"
	"coordbot/internal/redditgen"
)

func randomTriplets(rng *rand.Rand, nAuthors, n int) []hypergraph.Triplet {
	var out []hypergraph.Triplet
	for len(out) < n {
		a := graph.VertexID(rng.Intn(nAuthors))
		b := graph.VertexID(rng.Intn(nAuthors))
		c := graph.VertexID(rng.Intn(nAuthors))
		if a == b || b == c || a == c {
			continue
		}
		out = append(out, hypergraph.NewTriplet(a, b, c))
	}
	return out
}

func TestDistributedHypergraphMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	b := randomBTM(71, 3000, 80, 50)
	triplets := randomTriplets(rng, 80, 150)

	want := make([]hypergraph.Score, len(triplets))
	for i, tr := range triplets {
		want[i] = hypergraph.Evaluate(b, tr)
	}
	hypergraph.SortScores(want)

	for _, ranks := range []int{1, 4} {
		hc, err := NewHypergraphCluster(ranks)
		if err != nil {
			t.Fatal(err)
		}
		hc.Build(b)
		got := hc.EvaluateAll(triplets)
		if len(got) != len(want) {
			t.Fatalf("ranks %d: %d scores, want %d", ranks, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ranks %d: score %d = %+v, want %+v", ranks, i, got[i], want[i])
			}
		}
		hc.Close()
	}
}

func TestDistributedHypergraphPartitioning(t *testing.T) {
	// Every author's list lives on exactly its owner rank.
	b := randomBTM(13, 1000, 40, 25)
	hc, err := NewHypergraphCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	hc.Build(b)
	for r := range hc.shards {
		s := &hc.shards[r]
		s.mu.Lock()
		for a, pages := range s.pages {
			if hc.owner(a) != r {
				s.mu.Unlock()
				t.Fatalf("author %d stored on rank %d, owner %d", a, r, hc.owner(a))
			}
			// Lists must equal the BTM's (sorted, deduped).
			ref := b.AuthorPages(a)
			if len(pages) != len(ref) {
				s.mu.Unlock()
				t.Fatalf("author %d: %d pages stored, want %d", a, len(pages), len(ref))
			}
			for i := range ref {
				if pages[i] != ref[i] {
					s.mu.Unlock()
					t.Fatalf("author %d page list differs at %d", a, i)
				}
			}
		}
		s.mu.Unlock()
	}
}

func TestDistributedHypergraphReuseAndReset(t *testing.T) {
	d := redditgen.Generate(redditgen.Tiny(61))
	b := d.BTM()
	hc, err := NewHypergraphCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	hc.Build(b)
	ring := d.Truth["ring"]
	tr := hypergraph.NewTriplet(ring[0], ring[1], ring[2])
	got := hc.EvaluateAll([]hypergraph.Triplet{tr})
	want := hypergraph.Evaluate(b, tr)
	if len(got) != 1 || got[0] != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	// Second evaluation against the same index.
	got2 := hc.EvaluateAll([]hypergraph.Triplet{tr})
	if len(got2) != 1 || got2[0] != want {
		t.Fatal("reused evaluation differs")
	}
	// Reset then rebuild gives the same answer.
	hc.Reset()
	hc.Build(b)
	got3 := hc.EvaluateAll([]hypergraph.Triplet{tr})
	if len(got3) != 1 || got3[0] != want {
		t.Fatal("post-reset evaluation differs")
	}
}

func TestDistributedHypergraphEmptyTriplets(t *testing.T) {
	hc, err := NewHypergraphCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	hc.Build(randomBTM(5, 100, 10, 5))
	if out := hc.EvaluateAll(nil); len(out) != 0 {
		t.Fatalf("empty triplets yielded %d scores", len(out))
	}
}
