package ygmnet

import (
	"math/rand"
	"testing"

	"coordbot/internal/graph"
	"coordbot/internal/projection"
	"coordbot/internal/redditgen"
	"coordbot/internal/tripoll"
)

func randomCIGraph(seed int64, nv, ne int) *graph.CIGraph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewCIGraph()
	for i := 0; i < ne; i++ {
		u := graph.VertexID(rng.Intn(nv))
		v := graph.VertexID(rng.Intn(nv))
		if u != v {
			g.AddEdgeWeight(u, v, uint32(rng.Intn(5)+1))
		}
	}
	return g
}

func TestDistributedSurveyMatchesSequential(t *testing.T) {
	g := randomCIGraph(61, 100, 800)
	var want []tripoll.Triangle
	tripoll.SurveySequential(g, tripoll.Options{MinTriangleWeight: 2},
		func(tr tripoll.Triangle) { want = append(want, tr) })
	tripoll.SortTriangles(want)

	for _, ranks := range []int{1, 4} {
		tc, err := NewTriangleCluster(ranks)
		if err != nil {
			t.Fatal(err)
		}
		got := tc.Survey(g, tripoll.Options{MinTriangleWeight: 2})
		if len(got) != len(want) {
			t.Fatalf("ranks %d: %d triangles, want %d", ranks, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("ranks %d: triangle %d = %+v, want %+v", ranks, i, got[i], want[i])
			}
		}
		// Reusable: a second survey with a different threshold.
		var want3 []tripoll.Triangle
		tripoll.SurveySequential(g, tripoll.Options{MinTriangleWeight: 3},
			func(tr tripoll.Triangle) { want3 = append(want3, tr) })
		tripoll.SortTriangles(want3)
		got3 := tc.Survey(g, tripoll.Options{MinTriangleWeight: 3})
		if len(got3) != len(want3) {
			t.Fatalf("ranks %d second survey: %d triangles, want %d", ranks, len(got3), len(want3))
		}
		tc.Close()
	}
}

func TestDistributedSurveyTScore(t *testing.T) {
	// The full pipeline combination on real data: projection (distributed
	// over TCP) then triangle survey (distributed over TCP) equals the
	// sequential composition.
	d := redditgen.Generate(redditgen.Tiny(33))
	b := d.BTM()
	w := projection.Window{Min: 0, Max: 60}
	opts := projection.Options{Exclude: d.Helpers}

	pc, err := NewProjectionCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	ci, err := pc.Project(b, w, opts)
	if err != nil {
		t.Fatal(err)
	}

	sopts := tripoll.Options{MinTriangleWeight: 20, MinTScore: 0.5}
	var want []tripoll.Triangle
	tripoll.SurveySequential(ci, sopts, func(tr tripoll.Triangle) { want = append(want, tr) })
	tripoll.SortTriangles(want)

	tc, err := NewTriangleCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	got := tc.Survey(ci, sopts)
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("triangles = %d, want %d (nonzero)", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("triangle %d differs", i)
		}
	}
}

func TestDistributedSurveyEmpty(t *testing.T) {
	tc, err := NewTriangleCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	if out := tc.Survey(graph.NewCIGraph(), tripoll.Options{}); len(out) != 0 {
		t.Fatalf("empty graph yielded %d triangles", len(out))
	}
}
