package ygmnet

import (
	"coordbot/internal/graph"
	"coordbot/internal/projection"
)

// Distributed projection over the TCP transport: pages are dealt
// round-robin to ranks, each rank computes its pages' in-window pair sets
// locally, and edge weights / per-author page counts are reduced onto
// their owner ranks as serialized messages. The assembled result is
// exactly ProjectSequential's (integration-tested).
//
// This is the shape of the paper's multi-node YGM deployment: the BTM here
// is shared because the cluster is in-process; in a true multi-process run
// each rank would ingest its own page partition of the archive (see
// pushshift.ReadFunc) and the communication pattern is unchanged.

// ProjectionCluster is a cluster prepared for distributed projections:
// every rank carries an edge-weight reduce map and a page-count counter.
type ProjectionCluster struct {
	Cluster *Cluster
	edges   []*ReduceMapU32
	counts  []*Counter
}

// NewProjectionCluster starts an n-rank loopback cluster with projection
// containers registered on every rank.
func NewProjectionCluster(n int) (*ProjectionCluster, error) {
	pc := &ProjectionCluster{
		edges:  make([]*ReduceMapU32, n),
		counts: make([]*Counter, n),
	}
	cluster, err := StartLocal(n, func(node *Node) {
		pc.edges[node.Rank()] = NewReduceMapU32(node)
		pc.counts[node.Rank()] = NewCounter(node)
	})
	if err != nil {
		return nil, err
	}
	pc.Cluster = cluster
	return pc, nil
}

// Close shuts the cluster down.
func (pc *ProjectionCluster) Close() { pc.Cluster.Close() }

// Project runs one distributed projection. The containers are drained
// into the result, so the cluster can run further projections afterwards.
func (pc *ProjectionCluster) Project(b *graph.BTM, w projection.Window, opts projection.Options) (*graph.CIGraph, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	skip := func(a graph.VertexID) bool {
		if opts.Exclude[a] {
			return true
		}
		return opts.Restrict != nil && !opts.Restrict[a]
	}
	pc.Cluster.Run(func(node *Node) {
		edges := pc.edges[node.Rank()]
		counts := pc.counts[node.Rank()]
		pairs := make(map[uint64]struct{})
		authors := make(map[graph.VertexID]struct{})
		for p := node.Rank(); p < b.NumPages(); p += node.NRanks() {
			clear(pairs)
			nbhd := b.PageNeighborhood(graph.VertexID(p))
			for i := 0; i < len(nbhd); i++ {
				if skip(nbhd[i].Author) {
					continue
				}
				for j := i + 1; j < len(nbhd); j++ {
					d := nbhd[j].TS - nbhd[i].TS
					if d >= w.Max {
						break
					}
					if d < w.Min {
						continue
					}
					if nbhd[j].Author == nbhd[i].Author || skip(nbhd[j].Author) {
						continue
					}
					pairs[graph.PackEdge(nbhd[i].Author, nbhd[j].Author)] = struct{}{}
				}
			}
			if len(pairs) == 0 {
				continue
			}
			clear(authors)
			for key := range pairs {
				edges.AsyncAdd(key, 1)
				u, v := graph.UnpackEdge(key)
				authors[u] = struct{}{}
				authors[v] = struct{}{}
			}
			for a := range authors {
				counts.AsyncAdd(uint64(a), 1)
			}
		}
		node.Barrier()
	})

	g := graph.NewCIGraph()
	for r := range pc.edges {
		for key, wgt := range pc.edges[r].LocalShard() {
			u, v := graph.UnpackEdge(key)
			g.AddEdgeWeight(u, v, wgt)
		}
		for k, c := range pc.counts[r].LocalShard() {
			g.AddPageCount(graph.VertexID(k), uint32(c))
		}
		// Drain for reuse.
		pc.edges[r].mu.Lock()
		pc.edges[r].local = make(map[uint64]uint32)
		pc.edges[r].mu.Unlock()
		pc.counts[r].mu.Lock()
		pc.counts[r].local = make(map[uint64]int64)
		pc.counts[r].mu.Unlock()
	}
	return g, nil
}
