package ygmnet_test

import (
	"fmt"

	"coordbot/internal/graph"
	"coordbot/internal/projection"
	"coordbot/internal/ygmnet"
)

// A three-rank cluster over loopback TCP runs the paper's Algorithm 1 with
// serialized owner-computes messages, producing exactly the sequential
// projection.
func ExampleProjectionCluster() {
	btm := graph.BuildBTM([]graph.Comment{
		{Author: 0, Page: 0, TS: 0},
		{Author: 1, Page: 0, TS: 10},
		{Author: 2, Page: 0, TS: 20},
		{Author: 0, Page: 1, TS: 100},
		{Author: 1, Page: 1, TS: 130},
	}, 0, 0)

	pc, err := ygmnet.NewProjectionCluster(3)
	if err != nil {
		panic(err)
	}
	defer pc.Close()

	g, err := pc.Project(btm, projection.Window{Min: 0, Max: 60}, projection.Options{})
	if err != nil {
		panic(err)
	}
	seq, _ := projection.ProjectSequential(btm, projection.Window{Min: 0, Max: 60}, projection.Options{})
	fmt.Println("w'(0,1) =", g.Weight(0, 1))
	fmt.Println("equals sequential:", g.Equal(seq))
	// Output:
	// w'(0,1) = 2
	// equals sequential: true
}
