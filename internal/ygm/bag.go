package ygm

import "sync"

// Bag is an unordered distributed collection (ygm::container::bag): items
// land on whichever rank they were sent to, with a round-robin default.
// It is the standard output container for surveys — TriPoll appends each
// surviving triangle to a bag.
type Bag[T any] struct {
	comm   *Comm
	shards []bagShard[T]
	next   []int // per-rank round-robin cursor (indexed by sender rank)
}

type bagShard[T any] struct {
	mu    sync.Mutex
	items []T
}

// NewBag creates a Bag across c's ranks.
func NewBag[T any](c *Comm) *Bag[T] {
	return &Bag[T]{comm: c, shards: make([]bagShard[T], c.n), next: make([]int, c.n)}
}

// AsyncInsert appends v to the sender's local shard. Local insertion is the
// cheapest placement and matches ygm bag semantics (placement unspecified).
func (b *Bag[T]) AsyncInsert(r *Rank, v T) {
	s := &b.shards[r.ID()]
	s.mu.Lock()
	s.items = append(s.items, v)
	s.mu.Unlock()
}

// AsyncInsertAt appends v on a specific rank.
func (b *Bag[T]) AsyncInsertAt(r *Rank, dest int, v T) {
	r.Local(dest, func(*Rank) {
		s := &b.shards[dest]
		s.mu.Lock()
		s.items = append(s.items, v)
		s.mu.Unlock()
	})
}

// Size returns the global item count. Call at quiescence.
func (b *Bag[T]) Size() int {
	total := 0
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		total += len(s.items)
		s.mu.Unlock()
	}
	return total
}

// Gather concatenates all shards. Call at quiescence.
func (b *Bag[T]) Gather() []T {
	out := make([]T, 0, b.Size())
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		out = append(out, s.items...)
		s.mu.Unlock()
	}
	return out
}

// ForAllLocal iterates rank r's shard.
func (b *Bag[T]) ForAllLocal(r *Rank, fn func(v T)) {
	s := &b.shards[r.ID()]
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range s.items {
		fn(v)
	}
}

// LocalItems exposes rank r's shard for read-only phases after a Barrier.
func (b *Bag[T]) LocalItems(r *Rank) []T { return b.shards[r.ID()].items }
