package ygm

import "sync"

// mailbox is an unbounded multi-producer single-consumer queue of messages.
// Unboundedness matters: with bounded channels, two rank consumers that are
// each blocked sending to the other's full mailbox would deadlock. YGM's MPI
// transport has the same property (buffered eager sends).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Handler
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push enqueues h. It never blocks.
func (m *mailbox) push(h Handler) {
	m.mu.Lock()
	m.items = append(m.items, h)
	m.mu.Unlock()
	m.cond.Signal()
}

// pop dequeues the next message, blocking until one is available or the
// mailbox is closed. The second result is false once closed and drained.
func (m *mailbox) pop() (Handler, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.items) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.items) == 0 {
		return nil, false
	}
	h := m.items[0]
	m.items = m.items[1:]
	if len(m.items) == 0 {
		// Release the backing array so long-idle ranks don't pin memory.
		m.items = nil
	}
	return h, true
}

// close wakes the consumer; pending messages are still drained first.
func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}
