package ygm

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestCommBasicAsync(t *testing.T) {
	c := NewComm(4)
	defer c.Close()
	var hits atomic.Int64
	c.Run(func(r *Rank) {
		for d := 0; d < r.NRanks(); d++ {
			r.Async(d, func(*Rank) { hits.Add(1) })
		}
		r.Barrier()
	})
	if got := hits.Load(); got != 16 {
		t.Fatalf("hits = %d, want 16", got)
	}
}

func TestBarrierDrainsCascades(t *testing.T) {
	// Each message spawns children until depth 0; barrier must wait for
	// the whole cascade, not just the first generation.
	c := NewComm(3)
	defer c.Close()
	var leaves atomic.Int64
	var cascade func(r *Rank, depth int)
	cascade = func(r *Rank, depth int) {
		if depth == 0 {
			leaves.Add(1)
			return
		}
		for d := 0; d < r.NRanks(); d++ {
			dd := d
			r.Async(dd, func(rr *Rank) { cascade(rr, depth-1) })
		}
	}
	var after atomic.Int64
	c.Run(func(r *Rank) {
		cascade(r, 4) // 3 ranks * 3^4 leaves each
		r.Barrier()
		after.Store(leaves.Load())
	})
	want := int64(3 * 81)
	if got := leaves.Load(); got != want {
		t.Fatalf("leaves = %d, want %d", got, want)
	}
	if got := after.Load(); got != want {
		t.Fatalf("barrier returned before cascade finished: saw %d of %d", after.Load(), want)
	}
}

func TestMultipleBarrierEpochs(t *testing.T) {
	c := NewComm(4)
	defer c.Close()
	var sum atomic.Int64
	c.Run(func(r *Rank) {
		for round := 0; round < 10; round++ {
			r.Async((r.ID()+1)%r.NRanks(), func(*Rank) { sum.Add(1) })
			r.Barrier()
			// Exactly 4 more increments must be visible. A second
			// barrier separates this read from the next round's
			// sends (no rank sends between the two barriers).
			if got := sum.Load(); got != int64(4*(round+1)) {
				t.Errorf("round %d: sum = %d, want %d", round, got, 4*(round+1))
			}
			r.Barrier()
		}
	})
}

func TestLocalFastPath(t *testing.T) {
	c := NewComm(2)
	defer c.Close()
	var n atomic.Int64
	c.Run(func(r *Rank) {
		r.Local(r.ID(), func(*Rank) { n.Add(1) })
		r.Local((r.ID()+1)%2, func(*Rank) { n.Add(1) })
		r.Barrier()
	})
	if got := n.Load(); got != 4 {
		t.Fatalf("n = %d, want 4", got)
	}
}

func TestMessagesSentAccounting(t *testing.T) {
	c := NewComm(2)
	defer c.Close()
	c.Run(func(r *Rank) {
		for i := 0; i < 5; i++ {
			r.Async(0, func(*Rank) {})
		}
		r.Barrier()
	})
	if got := c.MessagesSent(); got != 10 {
		t.Fatalf("MessagesSent = %d, want 10", got)
	}
}

func TestDefaultRanksAtLeastTwo(t *testing.T) {
	if n := DefaultRanks(); n < 2 {
		t.Fatalf("DefaultRanks() = %d, want >= 2", n)
	}
	c := NewComm(0)
	defer c.Close()
	if c.NRanks() < 2 {
		t.Fatalf("NewComm(0) has %d ranks", c.NRanks())
	}
}

func TestInvalidRankPanics(t *testing.T) {
	c := NewComm(2)
	defer c.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid dest rank")
		}
	}()
	c.Rank0().Async(5, func(*Rank) {})
}

func TestQuickBarrierQuiescence(t *testing.T) {
	// Property: for any fan-out pattern, the count observed right after a
	// barrier equals the number of messages sent before it.
	f := func(fan uint8, ranks uint8) bool {
		nr := int(ranks%4) + 2
		nf := int(fan % 32)
		c := NewComm(nr)
		defer c.Close()
		var hits atomic.Int64
		ok := true
		c.Run(func(r *Rank) {
			for i := 0; i < nf; i++ {
				r.Async((r.ID()+i)%nr, func(*Rank) { hits.Add(1) })
			}
			r.Barrier()
			if hits.Load() != int64(nf*nr) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
