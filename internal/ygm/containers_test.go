package ygm

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestMapInsertGather(t *testing.T) {
	c := NewComm(4)
	defer c.Close()
	m := NewMap[uint32, string](c, HashU32)
	c.Run(func(r *Rank) {
		for i := 0; i < 100; i++ {
			if i%r.NRanks() == r.ID() {
				m.AsyncInsert(r, uint32(i), "v")
			}
		}
		r.Barrier()
	})
	if got := m.Size(); got != 100 {
		t.Fatalf("size = %d, want 100", got)
	}
}

func TestMapReduceSumsAcrossRanks(t *testing.T) {
	c := NewComm(4)
	defer c.Close()
	m := NewMap[uint32, int64](c, HashU32)
	add := func(a, b int64) int64 { return a + b }
	c.Run(func(r *Rank) {
		// Every rank adds 1 to every key — final value must be nranks.
		for k := uint32(0); k < 50; k++ {
			m.AsyncReduce(r, k, 1, add)
		}
		r.Barrier()
	})
	for k, v := range m.Gather() {
		if v != 4 {
			t.Fatalf("key %d = %d, want 4", k, v)
		}
	}
}

func TestMapVisitMissingKey(t *testing.T) {
	c := NewComm(2)
	defer c.Close()
	m := NewMap[uint32, int](c, HashU32)
	c.Run(func(r *Rank) {
		if r.ID() == 0 {
			m.AsyncVisit(r, 7, func(k uint32, v int, ok bool) (int, bool) {
				if ok {
					t.Errorf("key 7 should not exist")
				}
				return 0, false // do not store
			})
			m.AsyncVisit(r, 8, func(k uint32, v int, ok bool) (int, bool) {
				return 42, true
			})
		}
		r.Barrier()
	})
	g := m.Gather()
	if _, ok := g[7]; ok {
		t.Error("visit with store=false created key 7")
	}
	if g[8] != 42 {
		t.Errorf("key 8 = %d, want 42", g[8])
	}
}

func TestMapFetchRoundTrip(t *testing.T) {
	c := NewComm(3)
	defer c.Close()
	m := NewMap[uint32, int](c, HashU32)
	got := make([]int, 3)
	c.Run(func(r *Rank) {
		if r.ID() == 0 {
			m.AsyncInsert(r, 5, 99)
		}
		r.Barrier()
		id := r.ID()
		m.AsyncFetch(r, 5, func(_ uint32, v int, ok bool) {
			if !ok {
				t.Errorf("rank %d: key 5 missing", id)
			}
			got[id] = v
		})
		r.Barrier()
	})
	for i, v := range got {
		if v != 99 {
			t.Fatalf("rank %d fetched %d, want 99", i, v)
		}
	}
}

func TestCounterTotalEqualsIncrements(t *testing.T) {
	c := NewComm(4)
	defer c.Close()
	cnt := NewCounter[uint64](c, HashU64)
	const perRank = 500
	c.Run(func(r *Rank) {
		for i := 0; i < perRank; i++ {
			cnt.AsyncIncrement(r, uint64(i%37))
		}
		r.Barrier()
	})
	if got := cnt.Total(); got != int64(4*perRank) {
		t.Fatalf("total = %d, want %d", got, 4*perRank)
	}
	if got := cnt.Size(); got != 37 {
		t.Fatalf("distinct keys = %d, want 37", got)
	}
}

func TestSetDeduplicates(t *testing.T) {
	c := NewComm(4)
	defer c.Close()
	s := NewSet[uint32](c, HashU32)
	c.Run(func(r *Rank) {
		for i := 0; i < 100; i++ {
			s.AsyncInsert(r, uint32(i%10))
		}
		r.Barrier()
	})
	if got := s.Size(); got != 10 {
		t.Fatalf("size = %d, want 10", got)
	}
	members := s.Gather()
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	for i, v := range members {
		if v != uint32(i) {
			t.Fatalf("members[%d] = %d", i, v)
		}
	}
}

func TestBagGatherAllInserts(t *testing.T) {
	c := NewComm(4)
	defer c.Close()
	b := NewBag[int](c)
	c.Run(func(r *Rank) {
		for i := 0; i < 25; i++ {
			b.AsyncInsert(r, r.ID()*1000+i)
		}
		b.AsyncInsertAt(r, (r.ID()+1)%r.NRanks(), -r.ID())
		r.Barrier()
	})
	if got := b.Size(); got != 4*25+4 {
		t.Fatalf("size = %d, want %d", got, 4*25+4)
	}
	if got := len(b.Gather()); got != 4*25+4 {
		t.Fatalf("gather len = %d", got)
	}
}

func TestMultiMapAppendAndCounts(t *testing.T) {
	c := NewComm(4)
	defer c.Close()
	mm := NewMultiMap[uint32, int64](c, HashU32)
	c.Run(func(r *Rank) {
		for i := 0; i < 30; i++ {
			mm.AsyncAppend(r, uint32(i%5), int64(r.ID()))
		}
		r.Barrier()
	})
	if got := mm.KeyCount(); got != 5 {
		t.Fatalf("keys = %d, want 5", got)
	}
	if got := mm.ValueCount(); got != 4*30 {
		t.Fatalf("values = %d, want %d", got, 4*30)
	}
	for k, vs := range mm.Gather() {
		if len(vs) != 24 {
			t.Fatalf("key %d has %d values, want 24", k, len(vs))
		}
	}
}

func TestMultiMapVisitSorts(t *testing.T) {
	c := NewComm(2)
	defer c.Close()
	mm := NewMultiMap[uint32, int64](c, HashU32)
	c.Run(func(r *Rank) {
		if r.ID() == 0 {
			for _, v := range []int64{5, 1, 4, 2, 3} {
				mm.AsyncAppend(r, 1, v)
			}
		}
		r.Barrier()
		if r.ID() == 0 {
			mm.AsyncVisit(r, 1, func(_ uint32, vs []int64) []int64 {
				sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
				return vs
			})
		}
		r.Barrier()
	})
	vs := mm.Gather()[1]
	for i := 1; i < len(vs); i++ {
		if vs[i-1] > vs[i] {
			t.Fatalf("not sorted: %v", vs)
		}
	}
}

func TestQuickCounterMatchesSequential(t *testing.T) {
	// Property: distributing arbitrary increment streams across ranks
	// yields exactly the sequential histogram.
	f := func(keys []uint8) bool {
		c := NewComm(3)
		defer c.Close()
		cnt := NewCounter[uint64](c, HashU64)
		want := make(map[uint64]int64)
		for _, k := range keys {
			want[uint64(k)]++
		}
		c.Run(func(r *Rank) {
			for i, k := range keys {
				if i%r.NRanks() == r.ID() {
					cnt.AsyncIncrement(r, uint64(k))
				}
			}
			r.Barrier()
		})
		got := cnt.Gather()
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHashDistribution(t *testing.T) {
	// Dense uint32 keys must spread across ranks reasonably evenly.
	const n, ranks = 100000, 8
	counts := make([]int, ranks)
	for i := uint32(0); i < n; i++ {
		counts[HashU32(i)%ranks]++
	}
	for r, ct := range counts {
		if ct < n/ranks*8/10 || ct > n/ranks*12/10 {
			t.Fatalf("rank %d has %d of %d keys (poor spread)", r, ct, n)
		}
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("AutoModerator") != HashString("AutoModerator") {
		t.Fatal("HashString not deterministic")
	}
	if HashString("a") == HashString("b") {
		t.Fatal("trivial collision")
	}
}
