package ygm_test

import (
	"fmt"

	"coordbot/internal/ygm"
)

// A communicator with four ranks counts words with a partitioned Counter:
// every rank asynchronously increments keys, the barrier guarantees global
// quiescence, and the gathered histogram is exact.
func ExampleComm() {
	comm := ygm.NewComm(4)
	defer comm.Close()
	counter := ygm.NewCounter[string](comm, ygm.HashString)
	words := []string{"bot", "bot", "user", "bot", "user", "page"}
	comm.Run(func(r *ygm.Rank) {
		for i := r.ID(); i < len(words); i += r.NRanks() {
			counter.AsyncIncrement(r, words[i])
		}
		r.Barrier()
	})
	counts := counter.Gather()
	fmt.Println("bot:", counts["bot"])
	fmt.Println("user:", counts["user"])
	fmt.Println("page:", counts["page"])
	// Output:
	// bot: 3
	// user: 2
	// page: 1
}

// The distributed disjoint-set collapses a chain of unions issued from
// different ranks into one component.
func ExampleDisjointSet() {
	comm := ygm.NewComm(3)
	defer comm.Close()
	ds := ygm.NewDisjointSetOrdered[uint32](comm, ygm.HashU32)
	comm.Run(func(r *ygm.Rank) {
		for i := r.ID(); i < 9; i += r.NRanks() {
			ds.AsyncUnion(r, uint32(i), uint32(i+1))
		}
		r.Barrier()
	})
	fmt.Println("sets:", ds.CountSets())
	fmt.Println("items:", ds.Size())
	// Output:
	// sets: 1
	// items: 10
}
