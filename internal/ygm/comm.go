// Package ygm is an in-process reimplementation of the communication model
// of LLNL's YGM library ("Yet another Graph Machine"), the substrate the
// paper uses for every distributed step. A Comm owns a fixed set of ranks;
// user code runs SPMD-style, one goroutine per rank, and communicates only
// through asynchronous one-sided messages (closures) delivered to a
// destination rank's mailbox and executed by that rank's consumer. A
// Barrier completes only at global quiescence: every rank has arrived and
// every message sent — including messages sent by message handlers,
// transitively — has been processed.
//
// On top of the Comm sit partitioned containers (Map, Set, Counter, Bag,
// MultiMap) that hash-partition keys across ranks, mirroring YGM's
// ygm::container family used by the paper's projection and TriPoll steps.
package ygm

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Handler is a message: a closure executed on the destination rank by that
// rank's consumer goroutine. Handlers may send further messages via r.Async.
type Handler func(r *Rank)

// Comm is a communicator over a fixed number of ranks.
type Comm struct {
	n         int
	ranks     []*Rank
	mailboxes []*mailbox

	// inflight counts messages sent but not yet fully processed. A
	// handler's own sends increment the counter before its completion
	// decrements it, so inflight can only reach zero at true quiescence.
	inflight atomic.Int64

	// sent counts total messages for stats.
	sent atomic.Int64

	barMu    sync.Mutex
	barCond  *sync.Cond
	atBar    int
	barEpoch uint64

	wg      sync.WaitGroup
	started bool
}

// Rank is the per-rank execution context passed to SPMD bodies and handlers.
type Rank struct {
	comm *Comm
	id   int
}

// ID returns this rank's index in [0, NRanks).
func (r *Rank) ID() int { return r.id }

// NRanks returns the communicator size.
func (r *Rank) NRanks() int { return r.comm.n }

// Comm returns the owning communicator.
func (r *Rank) Comm() *Comm { return r.comm }

// DefaultRanks is the rank count used when 0 is requested: one per CPU,
// at least 2 so cross-rank paths are always exercised.
func DefaultRanks() int {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	return n
}

// NewComm creates a communicator with n ranks (0 means DefaultRanks()).
// Consumers start immediately; user SPMD bodies run via Run.
func NewComm(n int) *Comm {
	if n == 0 {
		n = DefaultRanks()
	}
	if n < 1 {
		panic(fmt.Sprintf("ygm: invalid rank count %d", n))
	}
	c := &Comm{n: n}
	c.barCond = sync.NewCond(&c.barMu)
	c.ranks = make([]*Rank, n)
	c.mailboxes = make([]*mailbox, n)
	for i := 0; i < n; i++ {
		c.ranks[i] = &Rank{comm: c, id: i}
		c.mailboxes[i] = newMailbox()
	}
	for i := 0; i < n; i++ {
		c.wg.Add(1)
		go c.consume(i)
	}
	return c
}

// NRanks returns the communicator size.
func (c *Comm) NRanks() int { return c.n }

// MessagesSent returns the total number of async messages sent so far.
func (c *Comm) MessagesSent() int64 { return c.sent.Load() }

// consume is the per-rank message loop.
func (c *Comm) consume(rank int) {
	defer c.wg.Done()
	r := c.ranks[rank]
	mb := c.mailboxes[rank]
	for {
		h, ok := mb.pop()
		if !ok {
			return
		}
		h(r)
		if c.inflight.Add(-1) == 0 {
			c.maybeRelease()
		}
	}
}

// maybeRelease wakes barrier waiters if global quiescence holds.
func (c *Comm) maybeRelease() {
	c.barMu.Lock()
	if c.atBar == c.n && c.inflight.Load() == 0 {
		c.barEpoch++
		c.atBar = 0
		c.barCond.Broadcast()
	}
	c.barMu.Unlock()
}

// Async sends h for execution on rank dest. Callable from SPMD bodies and
// from handlers. It never blocks.
func (r *Rank) Async(dest int, h Handler) {
	c := r.comm
	if dest < 0 || dest >= c.n {
		panic(fmt.Sprintf("ygm: async to invalid rank %d of %d", dest, c.n))
	}
	c.inflight.Add(1)
	c.sent.Add(1)
	c.mailboxes[dest].push(h)
}

// Local runs h immediately on this rank if dest == r.ID(), otherwise sends
// it. Use for owner-computes patterns where the caller often owns the key.
func (r *Rank) Local(dest int, h Handler) {
	if dest == r.id {
		// Count it as a message so quiescence accounting stays uniform.
		c := r.comm
		c.inflight.Add(1)
		c.sent.Add(1)
		h(r)
		if c.inflight.Add(-1) == 0 {
			c.maybeRelease()
		}
		return
	}
	r.Async(dest, h)
}

// Barrier blocks until every rank has called Barrier for this epoch and all
// messages (transitively) have been processed. It is the only legal
// synchronization point between communication phases, as in YGM.
func (r *Rank) Barrier() {
	c := r.comm
	c.barMu.Lock()
	epoch := c.barEpoch
	c.atBar++
	if c.atBar == c.n && c.inflight.Load() == 0 {
		c.barEpoch++
		c.atBar = 0
		c.barCond.Broadcast()
		c.barMu.Unlock()
		return
	}
	for c.barEpoch == epoch {
		c.barCond.Wait()
	}
	c.barMu.Unlock()
}

// Run executes body SPMD-style on every rank and returns when all bodies
// have returned. Bodies typically end with a Barrier to drain in-flight
// messages; Run also performs a final drain before returning so that all
// side effects are visible to the caller.
func (c *Comm) Run(body func(r *Rank)) {
	var wg sync.WaitGroup
	for i := 0; i < c.n; i++ {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			body(r)
		}(c.ranks[i])
	}
	wg.Wait()
	c.drain()
}

// drain waits for in-flight messages to finish without requiring ranks at a
// barrier. Used by Run's epilogue so callers observe quiescent state.
func (c *Comm) drain() {
	c.barMu.Lock()
	for c.inflight.Load() != 0 {
		// Handlers signal via maybeRelease only when atBar==n, so poll
		// with a condvar timeout substitute: release the lock briefly.
		c.barMu.Unlock()
		runtime.Gosched()
		c.barMu.Lock()
	}
	c.barMu.Unlock()
}

// Close shuts down the consumer goroutines after draining all in-flight
// messages. The Comm must not be used afterwards.
func (c *Comm) Close() {
	c.drain()
	for _, mb := range c.mailboxes {
		mb.close()
	}
	c.wg.Wait()
}

// Rank0 returns the context for rank 0, for one-off container setup or
// sequential sections outside Run.
func (c *Comm) Rank0() *Rank { return c.ranks[0] }
