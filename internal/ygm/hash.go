package ygm

// Key hashing for container partitioning. We use strong integer mixers
// (Murmur3/SplitMix64 finalizers) rather than identity so that structured
// IDs (dense vertex numbers, sorted pairs) spread evenly across ranks.

// HashU64 mixes a 64-bit key (SplitMix64 finalizer).
func HashU64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// HashU32 mixes a 32-bit key into 64 bits.
func HashU32(x uint32) uint64 { return HashU64(uint64(x)) }

// HashPair mixes an ordered pair of 32-bit keys (e.g. a graph edge).
func HashPair(a, b uint32) uint64 { return HashU64(uint64(a)<<32 | uint64(b)) }

// HashString hashes a string (FNV-1a 64, then mixed).
func HashString(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return HashU64(h)
}
