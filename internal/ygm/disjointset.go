package ygm

import "sync"

// DisjointSet is a hash-partitioned union-find in the style of
// ygm::container::disjoint_set: items live on owner ranks, unions are
// asynchronous messages that chase roots across ranks, and the structure
// resolves at the next barrier. The paper's connected-component extraction
// over billion-edge thresholded projections runs on exactly this container.
//
// The linking protocol maintains the invariant parent[v] strictly precedes
// v in a fixed total order (the key hash, ties by key order via less), so
// the parent forest is acyclic by construction and every union chain
// terminates: each hop either reaches a root or strictly descends.
type DisjointSet[K comparable] struct {
	comm   *Comm
	hash   func(K) uint64
	less   func(a, b K) bool
	shards []dsShard[K]
}

type dsShard[K comparable] struct {
	mu     sync.Mutex
	parent map[K]K
}

// NewDisjointSet creates a DisjointSet partitioned across c's ranks.
// less must be a strict total order on keys; NewDisjointSetOrdered derives
// it for ordered key types.
func NewDisjointSet[K comparable](c *Comm, hash func(K) uint64, less func(a, b K) bool) *DisjointSet[K] {
	d := &DisjointSet[K]{comm: c, hash: hash, less: less, shards: make([]dsShard[K], c.n)}
	for i := range d.shards {
		d.shards[i].parent = make(map[K]K)
	}
	return d
}

// NewDisjointSetOrdered creates a DisjointSet for an ordered key type.
func NewDisjointSetOrdered[K interface {
	comparable
	~int | ~int32 | ~int64 | ~uint | ~uint32 | ~uint64 | ~string
}](c *Comm, hash func(K) uint64) *DisjointSet[K] {
	return NewDisjointSet[K](c, hash, func(a, b K) bool { return a < b })
}

// Owner returns the rank owning key k.
func (d *DisjointSet[K]) Owner(k K) int { return int(d.hash(k) % uint64(d.comm.n)) }

// AsyncInsert ensures k exists as a singleton (no-op if present).
func (d *DisjointSet[K]) AsyncInsert(r *Rank, k K) {
	owner := d.Owner(k)
	r.Local(owner, func(*Rank) {
		s := &d.shards[owner]
		s.mu.Lock()
		if _, ok := s.parent[k]; !ok {
			s.parent[k] = k
		}
		s.mu.Unlock()
	})
}

// AsyncUnion merges the sets containing a and b. Completion is guaranteed
// by the next Barrier.
func (d *DisjointSet[K]) AsyncUnion(r *Rank, a, b K) {
	if a == b {
		d.AsyncInsert(r, a)
		return
	}
	d.chase(r, a, b)
}

// chase walks x toward its root, then links against y. Invariant carried
// across hops: we are merging the components of x and y.
func (d *DisjointSet[K]) chase(r *Rank, x, y K) {
	owner := d.Owner(x)
	r.Local(owner, func(or *Rank) {
		s := &d.shards[owner]
		s.mu.Lock()
		px, ok := s.parent[x]
		if !ok {
			s.parent[x] = x
			px = x
		}
		if px != x {
			s.mu.Unlock()
			// Not a root: hop to the parent (path stays acyclic since
			// parents strictly descend in the order).
			if px == y {
				return
			}
			d.chase(or, px, y)
			return
		}
		// x is a root.
		switch {
		case x == y:
			s.mu.Unlock()
		case d.less(y, x):
			// Attach root x under the strictly smaller y: preserves
			// the descending-parent invariant.
			s.parent[x] = y
			s.mu.Unlock()
			// Ensure y exists.
			d.AsyncInsert(or, y)
		default:
			s.mu.Unlock()
			// y > x: chase y's root and link it against x.
			d.chase(or, y, x)
		}
	})
}

// Roots resolves every key to its set representative. Call at quiescence
// (after Barrier / Run).
func (d *DisjointSet[K]) Roots() map[K]K {
	parent := make(map[K]K)
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		for k, p := range s.parent {
			parent[k] = p
		}
		s.mu.Unlock()
	}
	roots := make(map[K]K, len(parent))
	var find func(K) K
	find = func(k K) K {
		p := parent[k]
		if p == k {
			return k
		}
		r := find(p)
		parent[k] = r // compress
		return r
	}
	for k := range parent {
		roots[k] = find(k)
	}
	return roots
}

// Size returns the number of tracked keys. Call at quiescence.
func (d *DisjointSet[K]) Size() int {
	n := 0
	for i := range d.shards {
		s := &d.shards[i]
		s.mu.Lock()
		n += len(s.parent)
		s.mu.Unlock()
	}
	return n
}

// CountSets returns the number of disjoint sets. Call at quiescence.
func (d *DisjointSet[K]) CountSets() int {
	roots := d.Roots()
	distinct := make(map[K]struct{})
	for _, r := range roots {
		distinct[r] = struct{}{}
	}
	return len(distinct)
}
