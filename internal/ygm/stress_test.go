package ygm

import (
	"sync/atomic"
	"testing"
)

// Stress and edge-case tests for the runtime.

func TestHandlersSendingToAllRanksUnderLoad(t *testing.T) {
	// A two-generation storm: every message to rank r fans out to all
	// ranks once more. Quiescence accounting must survive the burst.
	c := NewComm(6)
	defer c.Close()
	var n atomic.Int64
	c.Run(func(r *Rank) {
		for i := 0; i < 200; i++ {
			r.Async(i%r.NRanks(), func(rr *Rank) {
				for d := 0; d < rr.NRanks(); d++ {
					rr.Async(d, func(*Rank) { n.Add(1) })
				}
			})
		}
		r.Barrier()
	})
	want := int64(6 * 200 * 6)
	if got := n.Load(); got != want {
		t.Fatalf("n = %d, want %d", got, want)
	}
}

func TestMapHighContentionSingleKey(t *testing.T) {
	c := NewComm(8)
	defer c.Close()
	m := NewMap[uint32, int64](c, HashU32)
	add := func(a, b int64) int64 { return a + b }
	const per = 2000
	c.Run(func(r *Rank) {
		for i := 0; i < per; i++ {
			m.AsyncReduce(r, 42, 1, add)
		}
		r.Barrier()
	})
	if got := m.Gather()[42]; got != 8*per {
		t.Fatalf("hot key = %d, want %d", got, 8*per)
	}
}

func TestCloseDrainsPendingWork(t *testing.T) {
	// Close must not lose messages that are still in flight.
	c := NewComm(3)
	var n atomic.Int64
	c.Run(func(r *Rank) {
		for i := 0; i < 100; i++ {
			r.Async((r.ID()+1)%r.NRanks(), func(*Rank) { n.Add(1) })
		}
		// No barrier: rely on Run's drain + Close.
	})
	c.Close()
	if got := n.Load(); got != 300 {
		t.Fatalf("n = %d, want 300 (messages lost at close)", got)
	}
}

func TestBarrierFromSingleRankComm(t *testing.T) {
	c := NewComm(1)
	defer c.Close()
	var n atomic.Int64
	c.Run(func(r *Rank) {
		r.Async(0, func(*Rank) { n.Add(1) })
		r.Barrier()
		if n.Load() != 1 {
			t.Error("single-rank barrier did not drain")
		}
	})
}

func TestDeepCascadeChain(t *testing.T) {
	// A 10000-deep sequential message chain (each handler sends one more)
	// must drain within one barrier.
	c := NewComm(2)
	defer c.Close()
	var depth atomic.Int64
	var step func(r *Rank, remaining int)
	step = func(r *Rank, remaining int) {
		depth.Add(1)
		if remaining == 0 {
			return
		}
		r.Async(remaining%2, func(rr *Rank) { step(rr, remaining-1) })
	}
	c.Run(func(r *Rank) {
		if r.ID() == 0 {
			r.Async(1, func(rr *Rank) { step(rr, 9999) })
		}
		r.Barrier()
	})
	if got := depth.Load(); got != 10000 {
		t.Fatalf("chain depth = %d, want 10000", got)
	}
}

func TestBagLocalItemsAfterBarrier(t *testing.T) {
	c := NewComm(4)
	defer c.Close()
	b := NewBag[int](c)
	var totals [4]int
	c.Run(func(r *Rank) {
		for i := 0; i < 10; i++ {
			b.AsyncInsertAt(r, (r.ID()+i)%r.NRanks(), i)
		}
		r.Barrier()
		totals[r.ID()] = len(b.LocalItems(r))
	})
	sum := 0
	for _, n := range totals {
		sum += n
	}
	if sum != 40 {
		t.Fatalf("local items sum = %d, want 40", sum)
	}
}
