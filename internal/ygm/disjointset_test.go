package ygm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDisjointSetBasicUnion(t *testing.T) {
	c := NewComm(4)
	defer c.Close()
	ds := NewDisjointSetOrdered[uint32](c, HashU32)
	c.Run(func(r *Rank) {
		if r.ID() == 0 {
			ds.AsyncUnion(r, 1, 2)
			ds.AsyncUnion(r, 3, 4)
			ds.AsyncInsert(r, 9)
		}
		r.Barrier()
	})
	if got := ds.CountSets(); got != 3 {
		t.Fatalf("sets = %d, want 3", got)
	}
	roots := ds.Roots()
	if roots[1] != roots[2] || roots[3] != roots[4] {
		t.Fatalf("roots wrong: %v", roots)
	}
	if roots[1] == roots[3] || roots[9] != 9 {
		t.Fatalf("spurious merge: %v", roots)
	}
}

func TestDisjointSetChainAcrossRanks(t *testing.T) {
	// A long chain built concurrently from both ends and the middle must
	// collapse into one set.
	c := NewComm(5)
	defer c.Close()
	ds := NewDisjointSetOrdered[uint32](c, HashU32)
	const n = 500
	c.Run(func(r *Rank) {
		for i := r.ID(); i < n-1; i += r.NRanks() {
			ds.AsyncUnion(r, uint32(i), uint32(i+1))
		}
		r.Barrier()
	})
	if got := ds.CountSets(); got != 1 {
		t.Fatalf("chain produced %d sets, want 1", got)
	}
	if ds.Size() != n {
		t.Fatalf("size = %d, want %d", ds.Size(), n)
	}
}

func TestDisjointSetSelfUnion(t *testing.T) {
	c := NewComm(2)
	defer c.Close()
	ds := NewDisjointSetOrdered[uint32](c, HashU32)
	c.Run(func(r *Rank) {
		if r.ID() == 0 {
			ds.AsyncUnion(r, 7, 7)
		}
		r.Barrier()
	})
	if ds.Size() != 1 || ds.CountSets() != 1 {
		t.Fatalf("self union: size=%d sets=%d", ds.Size(), ds.CountSets())
	}
}

func TestDisjointSetParentInvariant(t *testing.T) {
	// Internal invariant: every non-root parent strictly precedes its
	// child (acyclicity by construction).
	c := NewComm(4)
	defer c.Close()
	ds := NewDisjointSetOrdered[uint32](c, HashU32)
	rng := rand.New(rand.NewSource(8))
	pairs := make([][2]uint32, 2000)
	for i := range pairs {
		pairs[i] = [2]uint32{uint32(rng.Intn(300)), uint32(rng.Intn(300))}
	}
	c.Run(func(r *Rank) {
		for i := r.ID(); i < len(pairs); i += r.NRanks() {
			ds.AsyncUnion(r, pairs[i][0], pairs[i][1])
		}
		r.Barrier()
	})
	for i := range ds.shards {
		s := &ds.shards[i]
		s.mu.Lock()
		for k, p := range s.parent {
			if p != k && p >= k {
				s.mu.Unlock()
				t.Fatalf("parent invariant violated: parent[%d] = %d", k, p)
			}
		}
		s.mu.Unlock()
	}
}

func TestQuickDisjointSetMatchesSequential(t *testing.T) {
	// The distributed structure must induce exactly the partition of a
	// sequential union-find over the same edges.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 2
		m := rng.Intn(120)
		pairs := make([][2]uint32, m)
		for i := range pairs {
			pairs[i] = [2]uint32{uint32(rng.Intn(n)), uint32(rng.Intn(n))}
		}
		// Sequential reference.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for _, p := range pairs {
			parent[find(int(p[0]))] = find(int(p[1]))
		}
		// Distributed.
		c := NewComm(3)
		defer c.Close()
		ds := NewDisjointSetOrdered[uint32](c, HashU32)
		c.Run(func(r *Rank) {
			for i := r.ID(); i < len(pairs); i += r.NRanks() {
				ds.AsyncUnion(r, pairs[i][0], pairs[i][1])
			}
			r.Barrier()
		})
		roots := ds.Roots()
		// Same-set relation must agree on every touched pair of keys.
		touched := make([]uint32, 0, n)
		for k := range roots {
			touched = append(touched, k)
		}
		for i := 0; i < len(touched); i++ {
			for j := i + 1; j < len(touched); j++ {
				a, b := touched[i], touched[j]
				seq := find(int(a)) == find(int(b))
				dist := roots[a] == roots[b]
				if seq != dist {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
