package ygm

import "sync"

// Map is a hash-partitioned key→value container in the style of
// ygm::container::map. Each key lives on exactly one owner rank,
// determined by hash(key) mod nranks; mutating operations are asynchronous
// messages executed at the owner. Local shards are mutex-guarded so that
// inline fast-path delivery (Rank.Local) is safe.
type Map[K comparable, V any] struct {
	comm   *Comm
	hash   func(K) uint64
	shards []mapShard[K, V]
}

type mapShard[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]V
}

// NewMap creates a Map partitioned across c's ranks using hash.
func NewMap[K comparable, V any](c *Comm, hash func(K) uint64) *Map[K, V] {
	m := &Map[K, V]{comm: c, hash: hash, shards: make([]mapShard[K, V], c.n)}
	for i := range m.shards {
		m.shards[i].m = make(map[K]V)
	}
	return m
}

// Owner returns the rank that owns key k.
func (m *Map[K, V]) Owner(k K) int { return int(m.hash(k) % uint64(m.comm.n)) }

// AsyncInsert sets k to v at the owner (last write wins).
func (m *Map[K, V]) AsyncInsert(r *Rank, k K, v V) {
	owner := m.Owner(k)
	r.Local(owner, func(*Rank) {
		s := &m.shards[owner]
		s.mu.Lock()
		s.m[k] = v
		s.mu.Unlock()
	})
}

// AsyncVisit runs visit(k, current, exists) at the owner. The visit function
// returns the new value and whether to store it; returning store=false on a
// missing key leaves the map unchanged.
func (m *Map[K, V]) AsyncVisit(r *Rank, k K, visit func(k K, v V, exists bool) (V, bool)) {
	owner := m.Owner(k)
	r.Local(owner, func(*Rank) {
		s := &m.shards[owner]
		s.mu.Lock()
		cur, ok := s.m[k]
		nv, store := visit(k, cur, ok)
		if store {
			s.m[k] = nv
		}
		s.mu.Unlock()
	})
}

// AsyncReduce folds v into the value at k with reduce, inserting v if the
// key is absent. This is the workhorse for weighted-edge accumulation.
func (m *Map[K, V]) AsyncReduce(r *Rank, k K, v V, reduce func(a, b V) V) {
	owner := m.Owner(k)
	r.Local(owner, func(*Rank) {
		s := &m.shards[owner]
		s.mu.Lock()
		if cur, ok := s.m[k]; ok {
			s.m[k] = reduce(cur, v)
		} else {
			s.m[k] = v
		}
		s.mu.Unlock()
	})
}

// AsyncFetch delivers the value at k (zero V if absent) back to the calling
// rank via the continuation fn, which runs on the origin rank.
func (m *Map[K, V]) AsyncFetch(r *Rank, k K, fn func(k K, v V, ok bool)) {
	owner := m.Owner(k)
	origin := r.ID()
	r.Local(owner, func(or *Rank) {
		s := &m.shards[owner]
		s.mu.Lock()
		v, ok := s.m[k]
		s.mu.Unlock()
		or.Local(origin, func(*Rank) { fn(k, v, ok) })
	})
}

// LocalShard exposes rank r's shard for read-mostly phases after a Barrier.
// The caller must hold no expectation of concurrent mutation.
func (m *Map[K, V]) LocalShard(r *Rank) map[K]V { return m.shards[r.ID()].m }

// ForAllLocal iterates rank r's shard under the shard lock.
func (m *Map[K, V]) ForAllLocal(r *Rank, fn func(k K, v V)) {
	s := &m.shards[r.ID()]
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range s.m {
		fn(k, v)
	}
}

// Size returns the global entry count. Call at quiescence.
func (m *Map[K, V]) Size() int {
	total := 0
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		total += len(s.m)
		s.mu.Unlock()
	}
	return total
}

// Gather copies the whole map into one ordinary map. Call at quiescence.
func (m *Map[K, V]) Gather() map[K]V {
	out := make(map[K]V, m.Size())
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		for k, v := range s.m {
			out[k] = v
		}
		s.mu.Unlock()
	}
	return out
}

// Counter is a partitioned counting map (ygm::container::counting_set).
type Counter[K comparable] struct {
	m *Map[K, int64]
}

// NewCounter creates a Counter partitioned across c's ranks.
func NewCounter[K comparable](c *Comm, hash func(K) uint64) *Counter[K] {
	return &Counter[K]{m: NewMap[K, int64](c, hash)}
}

// AsyncAdd adds delta to the count for k.
func (c *Counter[K]) AsyncAdd(r *Rank, k K, delta int64) {
	c.m.AsyncReduce(r, k, delta, func(a, b int64) int64 { return a + b })
}

// AsyncIncrement adds 1 to the count for k.
func (c *Counter[K]) AsyncIncrement(r *Rank, k K) { c.AsyncAdd(r, k, 1) }

// Gather returns all counts. Call at quiescence.
func (c *Counter[K]) Gather() map[K]int64 { return c.m.Gather() }

// ForAllLocal iterates rank r's shard.
func (c *Counter[K]) ForAllLocal(r *Rank, fn func(k K, n int64)) { c.m.ForAllLocal(r, fn) }

// Size returns the number of distinct keys. Call at quiescence.
func (c *Counter[K]) Size() int { return c.m.Size() }

// Total returns the sum of all counts. Call at quiescence.
func (c *Counter[K]) Total() int64 {
	var t int64
	for k, v := range c.m.Gather() {
		_ = k
		t += v
	}
	return t
}

// Set is a hash-partitioned set (ygm::container::set).
type Set[K comparable] struct {
	m *Map[K, struct{}]
}

// NewSet creates a Set partitioned across c's ranks.
func NewSet[K comparable](c *Comm, hash func(K) uint64) *Set[K] {
	return &Set[K]{m: NewMap[K, struct{}](c, hash)}
}

// AsyncInsert adds k to the set.
func (s *Set[K]) AsyncInsert(r *Rank, k K) { s.m.AsyncInsert(r, k, struct{}{}) }

// Size returns the cardinality. Call at quiescence.
func (s *Set[K]) Size() int { return s.m.Size() }

// Gather returns the members. Call at quiescence.
func (s *Set[K]) Gather() []K {
	g := s.m.Gather()
	out := make([]K, 0, len(g))
	for k := range g {
		out = append(out, k)
	}
	return out
}

// ForAllLocal iterates rank r's shard.
func (s *Set[K]) ForAllLocal(r *Rank, fn func(k K)) {
	s.m.ForAllLocal(r, func(k K, _ struct{}) { fn(k) })
}
