package ygm

import "sync"

// MultiMap is a hash-partitioned key→[]value container, the shape of a
// distributed adjacency list (ygm::container::multimap). The projection
// step stores each page's time-sorted comment list in one; TriPoll stores
// per-vertex neighbor lists.
type MultiMap[K comparable, V any] struct {
	comm   *Comm
	hash   func(K) uint64
	shards []mmShard[K, V]
}

type mmShard[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K][]V
}

// NewMultiMap creates a MultiMap partitioned across c's ranks using hash.
func NewMultiMap[K comparable, V any](c *Comm, hash func(K) uint64) *MultiMap[K, V] {
	mm := &MultiMap[K, V]{comm: c, hash: hash, shards: make([]mmShard[K, V], c.n)}
	for i := range mm.shards {
		mm.shards[i].m = make(map[K][]V)
	}
	return mm
}

// Owner returns the rank that owns key k.
func (mm *MultiMap[K, V]) Owner(k K) int { return int(mm.hash(k) % uint64(mm.comm.n)) }

// AsyncAppend appends v to k's list at the owner.
func (mm *MultiMap[K, V]) AsyncAppend(r *Rank, k K, v V) {
	owner := mm.Owner(k)
	r.Local(owner, func(*Rank) {
		s := &mm.shards[owner]
		s.mu.Lock()
		s.m[k] = append(s.m[k], v)
		s.mu.Unlock()
	})
}

// AsyncVisit runs visit(k, values) at the owner; values may be mutated in
// place (the slice header returned replaces the stored one).
func (mm *MultiMap[K, V]) AsyncVisit(r *Rank, k K, visit func(k K, vs []V) []V) {
	owner := mm.Owner(k)
	r.Local(owner, func(*Rank) {
		s := &mm.shards[owner]
		s.mu.Lock()
		s.m[k] = visit(k, s.m[k])
		s.mu.Unlock()
	})
}

// ForAllLocal iterates rank r's shard under the shard lock.
func (mm *MultiMap[K, V]) ForAllLocal(r *Rank, fn func(k K, vs []V)) {
	s := &mm.shards[r.ID()]
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, vs := range s.m {
		fn(k, vs)
	}
}

// KeyCount returns the number of distinct keys. Call at quiescence.
func (mm *MultiMap[K, V]) KeyCount() int {
	total := 0
	for i := range mm.shards {
		s := &mm.shards[i]
		s.mu.Lock()
		total += len(s.m)
		s.mu.Unlock()
	}
	return total
}

// ValueCount returns the total number of stored values. Call at quiescence.
func (mm *MultiMap[K, V]) ValueCount() int {
	total := 0
	for i := range mm.shards {
		s := &mm.shards[i]
		s.mu.Lock()
		for _, vs := range s.m {
			total += len(vs)
		}
		s.mu.Unlock()
	}
	return total
}

// Gather copies the whole container. Call at quiescence.
func (mm *MultiMap[K, V]) Gather() map[K][]V {
	out := make(map[K][]V, mm.KeyCount())
	for i := range mm.shards {
		s := &mm.shards[i]
		s.mu.Lock()
		for k, vs := range s.m {
			cp := make([]V, len(vs))
			copy(cp, vs)
			out[k] = cp
		}
		s.mu.Unlock()
	}
	return out
}
