package temporal_test

import (
	"fmt"

	"coordbot/internal/graph"
	"coordbot/internal/temporal"
)

// Profiling a burst ring: three accounts that pile onto pages seconds
// apart classify as "burst" once there is enough evidence.
func ExampleClassifier_Classify() {
	var comments []graph.Comment
	for p := graph.VertexID(0); p < 25; p++ {
		base := int64(p) * 10000
		comments = append(comments,
			graph.Comment{Author: 1, Page: p, TS: base},
			graph.Comment{Author: 2, Page: p, TS: base + 3},
			graph.Comment{Author: 3, Page: p, TS: base + 6},
		)
	}
	btm := graph.BuildBTM(comments, 0, 0)
	profile := temporal.ProfileGroup(btm, []graph.VertexID{1, 2, 3})
	class := temporal.DefaultClassifier().Classify(profile)
	fmt.Printf("median gap %.0fs over %d pages → %s\n",
		profile.Summary.Median, profile.Pages, class)
	// Output: median gap 3s over 25 pages → burst
}
