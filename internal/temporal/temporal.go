// Package temporal characterizes *how* a detected group coordinates, from
// the same (author, page, time) data the pipeline runs on. The paper
// distinguishes behaviour types narratively — share/reshare rings respond
// "almost immediately" after a trigger, text-generation bots are "slower
// moving", reply bots fire at trigger comments anywhere — and proposes
// targeting them with window choices (§2.2, §4.3). This package makes the
// distinction computable: per-group response-delay profiles and a
// classifier over them.
//
// The delay profile of a group collects, for every page at least two group
// members touched, the gaps between consecutive group-member comments on
// that page. Burst rings concentrate near zero; paced generators sit at
// tens of seconds with low dispersion; organic cohorts scatter across
// hours or days.
package temporal

import (
	"fmt"
	"sort"

	"coordbot/internal/graph"
	"coordbot/internal/stats"
)

// Profile is a group's response-delay distribution.
type Profile struct {
	// Delays are the collected consecutive-comment gaps in seconds,
	// sorted ascending.
	Delays []float64
	// Pages is the number of pages that contributed at least one gap.
	Pages int
	// Summary of the delays.
	Summary stats.Summary
}

// ProfileGroup computes the delay profile of the given authors over the
// BTM. Only gaps between *group members'* consecutive comments on a shared
// page are collected (outside comments are invisible, as in projection).
func ProfileGroup(b *graph.BTM, members []graph.VertexID) Profile {
	inGroup := make(map[graph.VertexID]bool, len(members))
	for _, m := range members {
		inGroup[m] = true
	}
	// Pages touched by at least two members: union of member pages with
	// counting.
	pageHits := make(map[graph.VertexID]int)
	for _, m := range members {
		for _, p := range b.AuthorPages(m) {
			pageHits[p]++
		}
	}
	var delays []float64
	pages := 0
	for p, hits := range pageHits {
		if hits < 2 {
			continue
		}
		var prev int64
		var prevAuthor graph.VertexID
		have := false
		contributed := false
		for _, at := range b.PageNeighborhood(p) {
			if !inGroup[at.Author] {
				continue
			}
			if have && at.Author != prevAuthor {
				delays = append(delays, float64(at.TS-prev))
				contributed = true
			}
			prev, prevAuthor, have = at.TS, at.Author, true
		}
		if contributed {
			pages++
		}
	}
	sort.Float64s(delays)
	return Profile{Delays: delays, Pages: pages, Summary: stats.Summarize(delays)}
}

// Class is a coarse behaviour label.
type Class int

// Behaviour classes, in increasing median-delay order.
const (
	// Unknown means too little evidence (fewer than MinEvidence gaps).
	Unknown Class = iota
	// Burst: share/reshare-like, median gap under a minute (§3.1.2).
	Burst
	// Paced: machine-generated content at a steady cadence, median gap
	// minutes-scale with low dispersion (§3.1.1).
	Paced
	// Scattered: human-scale spreads — hours or days; organic communities
	// land here.
	Scattered
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Burst:
		return "burst"
	case Paced:
		return "paced"
	case Scattered:
		return "scattered"
	default:
		return "unknown"
	}
}

// Classifier holds the thresholds; the zero value is unusable, use
// DefaultClassifier.
type Classifier struct {
	// MinEvidence is the minimum number of gaps to classify.
	MinEvidence int
	// BurstMedian is the largest median gap (seconds) still "burst".
	BurstMedian float64
	// PacedMedian is the largest median gap still "paced".
	PacedMedian float64
	// PacedMaxIQRRatio bounds (p75-p25)/median for "paced": machine
	// cadence is regular; a wide relative IQR at minutes-scale medians
	// is scattered humanity, not pacing.
	PacedMaxIQRRatio float64
}

// DefaultClassifier returns thresholds matched to the paper's scenarios:
// reshare rings respond in seconds, GPT-2 bots in tens of seconds with a
// tight spread, organic cohorts over hours.
func DefaultClassifier() Classifier {
	return Classifier{
		MinEvidence:      20,
		BurstMedian:      15,
		PacedMedian:      600,
		PacedMaxIQRRatio: 3,
	}
}

// Classify labels a profile.
func (c Classifier) Classify(p Profile) Class {
	if len(p.Delays) < c.MinEvidence {
		return Unknown
	}
	med := p.Summary.Median
	switch {
	case med <= c.BurstMedian:
		return Burst
	case med <= c.PacedMedian:
		iqr := p.Summary.P75 - p.Summary.P25
		if med > 0 && iqr/med <= c.PacedMaxIQRRatio {
			return Paced
		}
		return Scattered
	default:
		return Scattered
	}
}

// Report renders a one-line profile summary.
func (p Profile) Report(label string, class Class) string {
	return fmt.Sprintf("%s: %s over %d pages, %d gaps (%s)",
		label, class, p.Pages, len(p.Delays), p.Summary)
}
