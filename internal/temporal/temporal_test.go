package temporal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"coordbot/internal/graph"
	"coordbot/internal/redditgen"
)

func TestProfileGroupSimple(t *testing.T) {
	// Page 0: members 1,2,3 at t=0,10,25 → gaps 10, 15.
	// Page 1: member 1 and outsider 9 → outsider invisible, no gap.
	b := graph.BuildBTM([]graph.Comment{
		{Author: 1, Page: 0, TS: 0},
		{Author: 2, Page: 0, TS: 10},
		{Author: 3, Page: 0, TS: 25},
		{Author: 1, Page: 1, TS: 100},
		{Author: 9, Page: 1, TS: 105},
	}, 0, 0)
	p := ProfileGroup(b, []graph.VertexID{1, 2, 3})
	if len(p.Delays) != 2 || p.Delays[0] != 10 || p.Delays[1] != 15 {
		t.Fatalf("delays = %v", p.Delays)
	}
	if p.Pages != 1 {
		t.Fatalf("pages = %d, want 1", p.Pages)
	}
}

func TestProfileSkipsSameAuthorRuns(t *testing.T) {
	// Consecutive comments by the same member are self-interaction, not
	// coordination; the gap must bridge distinct authors only.
	b := graph.BuildBTM([]graph.Comment{
		{Author: 1, Page: 0, TS: 0},
		{Author: 1, Page: 0, TS: 5},
		{Author: 2, Page: 0, TS: 20},
	}, 0, 0)
	p := ProfileGroup(b, []graph.VertexID{1, 2})
	if len(p.Delays) != 1 || p.Delays[0] != 15 {
		t.Fatalf("delays = %v, want [15]", p.Delays)
	}
}

func TestClassifierThresholds(t *testing.T) {
	c := DefaultClassifier()
	mk := func(med, p25, p75 float64, n int) Profile {
		d := make([]float64, n)
		for i := range d {
			d[i] = med
		}
		p := Profile{Delays: d}
		p.Summary.Median = med
		p.Summary.P25 = p25
		p.Summary.P75 = p75
		p.Summary.N = n
		return p
	}
	if got := c.Classify(mk(3, 1, 5, 100)); got != Burst {
		t.Fatalf("3s median = %v, want burst", got)
	}
	if got := c.Classify(mk(60, 40, 90, 100)); got != Paced {
		t.Fatalf("60s tight = %v, want paced", got)
	}
	if got := c.Classify(mk(60, 5, 500, 100)); got != Scattered {
		t.Fatalf("60s wide = %v, want scattered", got)
	}
	if got := c.Classify(mk(7200, 100, 90000, 100)); got != Scattered {
		t.Fatalf("2h median = %v, want scattered", got)
	}
	if got := c.Classify(mk(3, 1, 5, 5)); got != Unknown {
		t.Fatalf("5 samples = %v, want unknown", got)
	}
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[Class]string{
		Burst: "burst", Paced: "paced", Scattered: "scattered", Unknown: "unknown",
	} {
		if c.String() != want {
			t.Fatalf("%d.String() = %q", c, c.String())
		}
	}
}

func TestPlantedNetworksClassify(t *testing.T) {
	// The planted behaviours must land in their designed classes.
	cfg := redditgen.Jan2020(0.05)
	d := redditgen.Generate(cfg)
	b := d.BTM()
	c := DefaultClassifier()

	reshare := ProfileGroup(b, d.Truth["mlbstreams"])
	if got := c.Classify(reshare); got != Burst {
		t.Fatalf("reshare ring = %v (%s), want burst", got, reshare.Summary)
	}
	gpt := ProfileGroup(b, d.Truth["gpt2"])
	if got := c.Classify(gpt); got == Scattered || got == Unknown {
		t.Fatalf("gpt2 ring = %v (%s), want burst/paced", got, gpt.Summary)
	}
	cohort := ProfileGroup(b, d.Benign["bookclub"])
	if got := c.Classify(cohort); got != Scattered {
		t.Fatalf("benign cohort = %v (%s), want scattered", got, cohort.Summary)
	}
	if reshare.Summary.Median >= cohort.Summary.Median {
		t.Fatal("reshare median not below cohort median")
	}
}

func TestProfileEmptyGroup(t *testing.T) {
	b := graph.BuildBTM(nil, 5, 5)
	p := ProfileGroup(b, []graph.VertexID{1, 2})
	if len(p.Delays) != 0 || p.Pages != 0 {
		t.Fatalf("empty profile = %+v", p)
	}
	if DefaultClassifier().Classify(p) != Unknown {
		t.Fatal("empty profile must be unknown")
	}
	if p.Report("x", Unknown) == "" {
		t.Fatal("empty report")
	}
}

func TestQuickProfileInvariants(t *testing.T) {
	// Delays are nonnegative and sorted; gap count <= member comment
	// count; pages <= pages any member touched.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := make([]graph.Comment, 300)
		for i := range cs {
			cs[i] = graph.Comment{
				Author: graph.VertexID(rng.Intn(10)),
				Page:   graph.VertexID(rng.Intn(8)),
				TS:     int64(rng.Intn(10000)),
			}
		}
		b := graph.BuildBTM(cs, 10, 8)
		members := []graph.VertexID{0, 1, 2, 3}
		p := ProfileGroup(b, members)
		for i, d := range p.Delays {
			if d < 0 {
				return false
			}
			if i > 0 && p.Delays[i-1] > d {
				return false
			}
		}
		return len(p.Delays) <= 300 && p.Pages <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
