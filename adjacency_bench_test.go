package coordbot_test

// Persistent-orientation benchmark: the steady-state delta cycle —
// delta-thresholding, adjacency + orientation maintenance, and the dirty
// survey — with the oriented view patched in place from the pruned-graph
// edge diff (tripoll.Oriented.ApplyPatches) versus rebuilt from scratch
// every cycle (the pre-patching path: BuildAdjacency + Orient). The low
// weight cut keeps the pruned graph large, so the rebuilt path's
// O(pruned edges) floor is honest; the patched path's cost scales with
// the dirty batch instead. Run with
//
//	go test -bench Adjacency -benchmem
//
// or record the JSON report via TestWriteAdjacencyBench.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"coordbot/internal/graph"
	"coordbot/internal/projection"
	"coordbot/internal/redditgen"
	"coordbot/internal/stream"
	"coordbot/internal/tripoll"
)

// adjacencyCut keeps the pruned graph large (any repeated co-activity
// survives), unlike the detection-regime cut of the incremental benchmark.
const adjacencyCut = 2

// adjState is the persistent cross-cycle state of one benchmark mode: the
// live projector, the previous raw and pruned snapshots, and the oriented
// view being either patched or rebuilt.
type adjState struct {
	proj       *stream.SlidingProjector
	prev       *graph.CISnapshot
	prevPruned *graph.CISnapshot
	oriented   *tripoll.Oriented
	ts         int64
	cursor     int
	page       int
}

// newAdjState ingests the 80k-author corpus and runs the initial
// threshold + orientation build every mode starts from.
func newAdjState(b *testing.B, d *redditgen.Dataset) *adjState {
	b.Helper()
	// Horizon far beyond the benchmark's event-time drift: nothing evicts,
	// so every measured cycle is pure dirty-batch maintenance.
	proj, err := stream.NewSlidingProjectorShards(projection.Window{Min: 0, Max: 60},
		1<<40, projection.Options{}, incrementalShards)
	if err != nil {
		b.Fatal(err)
	}
	for _, c := range d.Comments {
		if err := proj.Add(c); err != nil {
			b.Fatal(err)
		}
	}
	s := &adjState{proj: proj, ts: d.Comments[len(d.Comments)-1].TS + 1}
	s.prev = proj.Snapshot()
	s.prevPruned = s.prev.ThresholdView(adjacencyCut).(*graph.CISnapshot)
	s.oriented = tripoll.Orient(s.prevPruned.BuildAdjacency())
	return s
}

// applyDirty ingests one dirty batch touching the given number of authors:
// rotating author pairs co-commenting on two fresh pages each (the
// projector counts a pair once per page, so two pages push the edge to
// weight 2 and across the cut — a real patch into the pruned graph).
// Timestamps are monotone across the batch and event time advances past
// the pairing window between cycles, so cycles never pair with each other.
func (s *adjState) applyDirty(b *testing.B, authors int) map[graph.VertexID]bool {
	b.Helper()
	dirty := make(map[graph.VertexID]bool, authors)
	batch := make([]graph.Comment, 0, 2*authors)
	for j := 0; j < authors/2; j++ {
		a1 := graph.VertexID(incrementalAuthors/2 + s.cursor%(incrementalAuthors/2-1))
		a2 := a1 + 1
		s.cursor += 2
		p1 := graph.VertexID(s.page % 20000)
		p2 := graph.VertexID((s.page + 1) % 20000)
		s.page += 2
		for k, c := range [4]graph.Comment{
			{Author: a1, Page: p1}, {Author: a2, Page: p1},
			{Author: a1, Page: p2}, {Author: a2, Page: p2},
		} {
			c.TS = s.ts + int64(4*j+k)
			batch = append(batch, c)
		}
		dirty[a1], dirty[a2] = true, true
	}
	if err := s.proj.AddAll(batch); err != nil {
		b.Fatal(err)
	}
	s.ts += int64(4*(authors/2)) + 61
	return dirty
}

// runAdjCycle executes one delta cycle's graph maintenance and dirty
// survey — the measured region starts after ingest/snapshot (identical in
// both modes) and covers the threshold delta, orientation maintenance
// (patch vs rebuild), and the dirty survey. Both modes survey the exact
// set of perturbed authors — every changed pruned edge has both endpoints
// there — so the survey work is identical and minimal, and the gap between
// the modes is pure adjacency maintenance. (detectd's shard-granular
// DirtyVertices over-approximates this set; its width is a property of the
// store layout, not of the orientation structure under test.)
func runAdjCycle(b *testing.B, s *adjState, patched bool, dirtyAuthors int) (patchedEdges int, triangles int) {
	b.StopTimer()
	dirty := s.applyDirty(b, dirtyAuthors)
	cur := s.proj.Snapshot()
	b.StartTimer()

	pruned := cur.ThresholdDelta(s.prev, s.prevPruned, adjacencyCut)
	if patched {
		patches, _, ok := pruned.EdgePatches(s.prevPruned)
		if !ok {
			b.Fatal("pruned snapshots incomparable")
		}
		if len(patches) == 0 {
			b.Fatal("dirty batch produced no pruned-graph patches")
		}
		s.oriented.ApplyPatches(patches)
		patchedEdges = len(patches)
	} else {
		s.oriented = tripoll.Orient(pruned.BuildAdjacency())
	}
	s.oriented.SurveyDirty(tripoll.Options{MinTriangleWeight: adjacencyCut}, dirty, nil,
		func(tripoll.Triangle) { triangles++ })

	s.prev, s.prevPruned = cur, pruned
	return patchedEdges, triangles
}

func benchAdjacencyCycles(b *testing.B, d *redditgen.Dataset, patched bool, dirtyAuthors int) {
	s := newAdjState(b, d)
	var patchedEdges int
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pe, _ := runAdjCycle(b, s, patched, dirtyAuthors)
		patchedEdges += pe
	}
	b.StopTimer()
	b.ReportMetric(float64(s.prevPruned.NumEdges()), "pruned-edges")
	if patched {
		b.ReportMetric(float64(patchedEdges)/float64(b.N), "patches/cycle")
		b.ReportMetric(float64(s.oriented.Rebuilds()), "reorients")
	}
}

// adjacencyDirtyFracs maps the benchmark's dirty regimes to authors per
// batch, as fractions of the 80k-author corpus.
var adjacencyDirtyFracs = []struct {
	name    string
	frac    float64
	authors int
}{
	{"dirty-0.1pct", 0.001, incrementalAuthors / 1000},
	{"dirty-1pct", 0.01, incrementalAuthors / 100},
	{"dirty-10pct", 0.1, incrementalAuthors / 10},
}

func BenchmarkAdjacency(b *testing.B) {
	d := incrementalCorpus()
	for _, tc := range adjacencyDirtyFracs {
		b.Run(tc.name+"/patched", func(b *testing.B) { benchAdjacencyCycles(b, d, true, tc.authors) })
		b.Run(tc.name+"/rebuilt", func(b *testing.B) { benchAdjacencyCycles(b, d, false, tc.authors) })
	}
}

// TestWriteAdjacencyBench records the patched-vs-rebuilt delta-cycle
// latencies across dirty fractions to the JSON file named by
// BENCH_ADJACENCY_OUT (skipped otherwise), and enforces the acceptance
// floor: at ≤ 1% dirty the patched cycle must be ≥ 3x faster than the
// rebuild-every-cycle path.
//
//	BENCH_ADJACENCY_OUT=BENCH_adjacency.json go test -run TestWriteAdjacencyBench .
func TestWriteAdjacencyBench(t *testing.T) {
	out := os.Getenv("BENCH_ADJACENCY_OUT")
	if out == "" {
		t.Skip("set BENCH_ADJACENCY_OUT=<path> to record the adjacency benchmark")
	}
	d := incrementalCorpus()
	var regimes []map[string]any
	for _, tc := range adjacencyDirtyFracs {
		patched := testing.Benchmark(func(b *testing.B) { benchAdjacencyCycles(b, d, true, tc.authors) })
		rebuilt := testing.Benchmark(func(b *testing.B) { benchAdjacencyCycles(b, d, false, tc.authors) })
		speedup := float64(rebuilt.NsPerOp()) / float64(patched.NsPerOp())
		regimes = append(regimes, map[string]any{
			"dirty_frac":    tc.frac,
			"dirty_authors": tc.authors,
			"patched_cycle": map[string]any{
				"latency_ms":    float64(patched.NsPerOp()) / 1e6,
				"cycles":        patched.N,
				"allocs_per_op": patched.AllocsPerOp(),
				"patches":       patched.Extra["patches/cycle"],
				"reorients":     patched.Extra["reorients"],
			},
			"rebuilt_cycle": map[string]any{
				"latency_ms":    float64(rebuilt.NsPerOp()) / 1e6,
				"cycles":        rebuilt.N,
				"allocs_per_op": rebuilt.AllocsPerOp(),
			},
			"pruned_edges": rebuilt.Extra["pruned-edges"],
			"speedup":      speedup,
		})
		t.Logf("%s: patched %.3f ms vs rebuilt %.3f ms per cycle -> %.1fx",
			tc.name, float64(patched.NsPerOp())/1e6, float64(rebuilt.NsPerOp())/1e6, speedup)
		if tc.frac <= 0.01 && speedup < 3 {
			t.Errorf("%s: patched speedup %.1fx below the 3x floor", tc.name, speedup)
		}
	}
	report := map[string]any{
		"benchmark": "adjacency-maintenance",
		"corpus": benchRuntime(map[string]any{
			"authors":  incrementalAuthors,
			"comments": incrementalComments,
			"edge_cut": adjacencyCut,
		}, 1, incrementalShards),
		"cycle":   "threshold-delta + orientation maintenance (patch vs rebuild) + dirty survey",
		"regimes": regimes,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)
}
