package coordbot_test

import (
	"runtime"

	"coordbot/internal/graph"
)

// benchRuntime stamps the runtime knobs that make recorded perf numbers
// comparable across boxes into a report's corpus block: GOMAXPROCS, the
// ingest lane count the benchmark ran with (the -ingest-workers setting,
// 0 meaning all cores), and the CI store's shard count (0 meaning
// graph.DefaultShards). Batch-projection benchmarks pass ingestWorkers 1
// — they have no lane-striped ingest path.
func benchRuntime(corpus map[string]any, ingestWorkers, shards int) map[string]any {
	if ingestWorkers <= 0 {
		ingestWorkers = runtime.GOMAXPROCS(0)
	}
	if shards <= 0 {
		shards = graph.DefaultShards
	}
	corpus["gomaxprocs"] = runtime.GOMAXPROCS(0)
	corpus["ingest_workers"] = ingestWorkers
	corpus["shards"] = shards
	return corpus
}
